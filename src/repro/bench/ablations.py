"""Ablation experiments beyond the paper's tables (DESIGN.md §7).

These probe the design choices the paper discusses but does not
tabulate:

* §5: "for virtual graph transformation, we only observed marginal
  improvements by tuning K" → :func:`k_sweep_virtual`;
* §5: "for physical graph transformation (UDT), we did observe
  substantial performance variations for different values of K"
  → :func:`k_sweep_physical`;
* §5's two engine optimizations (worklist, plus edge-array coalescing
  from §4.4) → :func:`optimization_grid`;
* Table 1's trade-off realised end-to-end: how the connection topology
  changes convergence and memory when actually running SSSP
  → :func:`topology_race`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.algorithms import sssp
from repro.bench.report import ExperimentReport
from repro.bench.tables import default_source
from repro.core.splits import circular_transform, clique_transform, star_transform
from repro.core.udt import udt_transform
from repro.core.virtual import virtual_transform
from repro.engine.push import EngineOptions
from repro.engine.schedule import NodeScheduler, VirtualScheduler
from repro.gpu.config import GPUConfig
from repro.gpu.simulator import GPUSimulator
from repro.graph.datasets import load_dataset


def _simulated_sssp(scheduler, source, config, *, worklist=True):
    simulator = GPUSimulator(config)
    result = sssp(scheduler, source, options=EngineOptions(worklist=worklist),
                  simulator=simulator)
    return result


def k_sweep_virtual(
    *,
    dataset: str = "livejournal",
    degree_bounds: Sequence[int] = (4, 8, 10, 16, 32),
    scale: float = 1.0,
    seed: Optional[int] = None,
    config: Optional[GPUConfig] = None,
) -> ExperimentReport:
    """SSSP time vs K for the virtual transformation (Tigr-V+).

    Expected: a shallow curve — the paper picked a single K = 10 for
    all datasets because tuning barely matters.
    """
    report = ExperimentReport("Ablation V-K", f"virtual K sweep (SSSP, {dataset})")
    config = config or GPUConfig()
    graph = load_dataset(dataset, scale=scale, seed=seed)
    source = default_source(graph)
    times = []
    for k in degree_bounds:
        virtual = virtual_transform(graph, k, coalesced=True)
        result = _simulated_sssp(VirtualScheduler(virtual), source, config)
        times.append(result.metrics.total_time_ms)
        report.add_row(K=k, time_ms=result.metrics.total_time_ms,
                       warp_efficiency=result.metrics.warp_efficiency,
                       iterations=result.num_iterations)
    report.extras["spread"] = max(times) / min(times)
    return report


def k_sweep_physical(
    *,
    dataset: str = "livejournal",
    degree_bounds: Sequence[int] = (4, 8, 16, 64, 256),
    scale: float = 1.0,
    seed: Optional[int] = None,
    config: Optional[GPUConfig] = None,
) -> ExperimentReport:
    """SSSP time vs K for physical UDT.

    Expected: a deep curve — too-small K inflates iteration counts,
    too-large K leaves the imbalance in place; the paper tunes K per
    dataset via a d_max heuristic for exactly this reason.
    """
    report = ExperimentReport("Ablation UDT-K", f"physical K sweep (SSSP, {dataset})")
    config = config or GPUConfig()
    graph = load_dataset(dataset, scale=scale, seed=seed)
    source = default_source(graph)
    times = []
    for k in degree_bounds:
        transformed = udt_transform(graph, k)
        result = _simulated_sssp(NodeScheduler(transformed.graph), source, config)
        times.append(result.metrics.total_time_ms)
        report.add_row(K=k, time_ms=result.metrics.total_time_ms,
                       iterations=result.num_iterations,
                       warp_efficiency=result.metrics.warp_efficiency,
                       new_nodes=transformed.stats.new_nodes)
    report.extras["spread"] = max(times) / min(times)
    return report


def optimization_grid(
    *,
    dataset: str = "livejournal",
    degree_bound: int = 10,
    scale: float = 1.0,
    seed: Optional[int] = None,
    config: Optional[GPUConfig] = None,
) -> ExperimentReport:
    """Worklist x edge-array-coalescing grid for the virtual engine.

    Both §5 optimizations should help independently and compose.
    """
    report = ExperimentReport(
        "Ablation grid", f"worklist x coalescing (SSSP, {dataset}, K={degree_bound})"
    )
    config = config or GPUConfig()
    graph = load_dataset(dataset, scale=scale, seed=seed)
    source = default_source(graph)
    for worklist in (False, True):
        for coalesced in (False, True):
            virtual = virtual_transform(graph, degree_bound, coalesced=coalesced)
            result = _simulated_sssp(
                VirtualScheduler(virtual), source, config, worklist=worklist
            )
            report.add_row(
                worklist=worklist, coalesced=coalesced,
                time_ms=result.metrics.total_time_ms,
                transactions=result.metrics.total_transactions,
            )
    return report


def topology_race(
    *,
    dataset: str = "pokec",
    degree_bound: int = 8,
    scale: float = 1.0,
    seed: Optional[int] = None,
    config: Optional[GPUConfig] = None,
) -> ExperimentReport:
    """Table 1's trade-off, end to end: SSSP on each physical topology.

    Expected: `T_circ`'s long in-family hop chains inflate iteration
    counts far beyond UDT's; `T_cliq` pays a large edge-memory premium;
    `T_star` leaves the hub-degree imbalance; UDT is the balanced
    choice — which is why the paper adopts it.
    """
    report = ExperimentReport(
        "Ablation topologies", f"split-topology race (SSSP, {dataset}, K={degree_bound})"
    )
    config = config or GPUConfig()
    graph = load_dataset(dataset, scale=scale, seed=seed)
    source = default_source(graph)
    transforms = {
        "cliq": clique_transform,
        "circ": circular_transform,
        "star": star_transform,
        "udt": udt_transform,
    }
    baseline = _simulated_sssp(NodeScheduler(graph), source, config)
    report.add_row(topology="(none)", iterations=baseline.num_iterations,
                   time_ms=baseline.metrics.total_time_ms,
                   extra_edges=0, max_degree=graph.max_out_degree())
    for name, transform in transforms.items():
        result = transform(graph, degree_bound)
        run = _simulated_sssp(NodeScheduler(result.graph), source, config)
        values = result.read_values(run.values)
        assert np.allclose(values, _simulated_sssp(
            NodeScheduler(graph), source, config).values)
        report.add_row(
            topology=name,
            iterations=run.num_iterations,
            time_ms=run.metrics.total_time_ms,
            extra_edges=result.stats.new_edges,
            max_degree=result.graph.max_out_degree(),
        )
    return report


def push_vs_pull(
    *,
    dataset: str = "livejournal",
    degree_bound: int = 10,
    scale: float = 1.0,
    seed: Optional[int] = None,
    config: Optional[GPUConfig] = None,
) -> ExperimentReport:
    """Push vs pull vs adaptive direction for SSSP (§2.1 / [4]).

    Four engines on the same graph: push with worklist, pull with
    worklist (over the reverse graph), adaptive switching, and push
    under Tigr virtual scheduling.  All must produce identical
    distances; the interesting columns are edges processed and
    simulated time.
    """
    from repro.algorithms.programs import SSSPProgram
    from repro.engine.adaptive import run_adaptive
    from repro.engine.pull import run_pull
    from repro.gpu.simulator import GPUSimulator

    report = ExperimentReport(
        "Ablation direction", f"push vs pull vs adaptive (SSSP, {dataset})"
    )
    config = config or GPUConfig()
    graph = load_dataset(dataset, scale=scale, seed=seed)
    source = default_source(graph)
    reverse = graph.reverse()

    runs = {}
    sim = GPUSimulator(config)
    runs["push"] = sssp(NodeScheduler(graph), source, simulator=sim)
    sim = GPUSimulator(config)
    runs["pull"] = run_pull(NodeScheduler(reverse), SSSPProgram(), graph, source,
                            simulator=sim)
    sim = GPUSimulator(config)
    runs["adaptive"] = run_adaptive(graph, SSSPProgram(), source,
                                    reverse=reverse, simulator=sim)
    sim = GPUSimulator(config)
    runs["tigr-v+ push"] = sssp(
        VirtualScheduler(virtual_transform(graph, degree_bound, coalesced=True)),
        source, simulator=sim,
    )
    baseline_values = runs["push"].values
    for name, result in runs.items():
        assert np.allclose(result.values, baseline_values)
        report.add_row(
            engine=name,
            iterations=result.num_iterations,
            edges_processed=result.edges_processed,
            time_ms=result.metrics.total_time_ms,
            warp_efficiency=result.metrics.warp_efficiency,
        )
    return report
