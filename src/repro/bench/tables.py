"""Regeneration of the paper's Tables 1 and 3–8 on the stand-ins.

Every function is deterministic under its ``seed`` / ``scale``
arguments and returns an :class:`~repro.bench.report.ExperimentReport`
whose rows mirror the paper table's layout.  See DESIGN.md §4 for the
experiment index and EXPERIMENTS.md for paper-vs-measured discussion.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.baselines import standard_methods
from repro.baselines.base import ALGORITHMS
from repro.bench.report import ExperimentReport
from repro.core.analysis import predict_properties
from repro.core.splits import circular_transform, clique_transform, star_transform
from repro.core.udt import udt_transform
from repro.core.virtual import virtual_transform
from repro.core.weights import DumbWeight
from repro.engine.push import EngineOptions
from repro.engine.schedule import NodeScheduler, VirtualScheduler
from repro.algorithms import sssp
from repro.gpu.config import GPUConfig
from repro.gpu.simulator import GPUSimulator
from repro.graph.datasets import DATASETS, dataset_names, load_dataset
from repro.graph.generators import star
from repro.graph.stats import degree_stats, estimate_diameter

_TRANSFORMS = {
    "cliq": clique_transform,
    "circ": circular_transform,
    "star": star_transform,
    "udt": udt_transform,
}


def default_source(graph) -> int:
    """Source-node convention for all single-source benches.

    The highest-outdegree node: deterministically defined, guaranteed
    non-trivial reach, and the node whose processing most stresses
    load balance.
    """
    return int(np.argmax(graph.out_degrees()))


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------
def table1_split_properties(
    degrees: Sequence[int] = (10, 100, 1_000, 10_000, 100_000),
    degree_bounds: Sequence[int] = (4, 10, 32),
) -> ExperimentReport:
    """Table 1: properties of the split transformations.

    For each topology and each ``(d, K)``, measures #new nodes, #new
    edges, family degree, and max in-family hops on a single star
    graph of degree ``d``, and checks them against the closed forms of
    :mod:`repro.core.analysis`.
    """
    report = ExperimentReport(
        "Table 1", "properties of split transformations (measured vs predicted)"
    )
    for d in degrees:
        graph = star(d)
        for k in degree_bounds:
            if d <= k:
                continue
            for topology, transform in _TRANSFORMS.items():
                if topology == "cliq" and -(-d // k) > 2_000:
                    # T_cliq adds p(p-1) edges; materialising multi-
                    # million-edge cliques teaches nothing beyond what
                    # the (verified) closed form already says.
                    continue
                predicted = predict_properties(topology, d, k)
                result = transform(graph, k)
                report.add_row(
                    topology=topology, d=d, K=k,
                    new_nodes=result.stats.new_nodes,
                    new_edges=result.stats.new_edges,
                    new_degree=result.stats.max_degree_after,
                    max_hops=result.stats.max_family_hops,
                    pred_nodes=predicted.new_nodes,
                    pred_edges=predicted.new_edges,
                    pred_degree=predicted.new_degree,
                    pred_hops=predicted.max_hops,
                    match=(
                        result.stats.new_nodes == predicted.new_nodes
                        and result.stats.new_edges == predicted.new_edges
                        and result.stats.max_degree_after == predicted.new_degree
                        and result.stats.max_family_hops == predicted.max_hops
                    ),
                )
    report.extras["all_match"] = all(r["match"] for r in report.rows)
    return report


# ---------------------------------------------------------------------------
# Table 3
# ---------------------------------------------------------------------------
def table3_datasets(
    *, scale: float = 1.0, seed: Optional[int] = None
) -> ExperimentReport:
    """Table 3: statistics of the six stand-in datasets."""
    report = ExperimentReport("Table 3", "datasets in evaluation (synthetic stand-ins)")
    for name in dataset_names():
        spec = DATASETS[name]
        graph = load_dataset(name, scale=scale, seed=seed)
        stats = degree_stats(graph)
        report.add_row(
            dataset=name,
            nodes=stats.num_nodes,
            edges=stats.num_edges,
            d_max=stats.max_degree,
            diameter=estimate_diameter(graph, num_sources=6, seed=0),
            K_udt=spec.k_udt,
            K_v=spec.k_v,
            paper_nodes=spec.paper_nodes,
            paper_edges=spec.paper_edges,
            paper_dmax=spec.paper_dmax,
            paper_diameter=spec.paper_diameter,
        )
    return report


# ---------------------------------------------------------------------------
# Table 4
# ---------------------------------------------------------------------------
def table4_performance(
    *,
    algorithms: Iterable[str] = ("bfs", "sssp", "pr", "cc", "sswp", "bc"),
    datasets: Optional[Iterable[str]] = None,
    scale: float = 1.0,
    seed: Optional[int] = None,
    config: Optional[GPUConfig] = None,
    extended: bool = False,
) -> ExperimentReport:
    """Table 4: simulated-time comparison of all methods.

    One row per (algorithm, dataset): the Table 2 method line-up's
    simulated kernel times (``OOM`` where the footprint model exceeds
    device memory) and the winner.  Methods lacking a primitive show
    ``-`` exactly where the paper's table does.

    ``extended=True`` widens the table beyond the paper's four columns
    to the full method zoo of this repository: baseline, Tigr-UDT,
    Tigr-V, and the hardwired primitives.
    """
    title = "performance comparison (simulated ms; OOM where modelled)"
    report = ExperimentReport(
        "Table 4" + (" (extended)" if extended else ""), title
    )
    config = config or GPUConfig()
    for name in datasets if datasets is not None else dataset_names():
        spec = DATASETS[name]
        graph = load_dataset(name, scale=scale, seed=seed)
        source = default_source(graph)
        methods = standard_methods(k_udt=spec.k_udt, k_v=spec.k_v)
        if extended:
            from repro.baselines.hardwired import hardwired_methods

            table_methods = methods + hardwired_methods()
        else:
            # Table 4 compares MW / CuSha / Gunrock / Tigr-V+ (the Tigr
            # breakdown lives in Figure 13).
            table_methods = [
                m for m in methods
                if m.name in ("mw", "cusha", "gunrock", "tigr-v+")
            ]
        for algorithm in algorithms:
            row = {"algorithm": algorithm, "dataset": name}
            best_name, best_time = None, float("inf")
            for method in table_methods:
                if not method.supports(algorithm):
                    row[method.name] = "-"
                    continue
                result = method.run(
                    graph, algorithm,
                    source if ALGORITHMS[algorithm].needs_source else None,
                    config=config,
                )
                row[method.name] = result.display_time
                if not result.oom and result.time_ms < best_time:
                    best_name, best_time = method.name, result.time_ms
            row["best"] = best_name
            report.add_row(**row)
    wins = sum(1 for r in report.rows if r["best"] == "tigr-v+")
    report.extras["tigr_v_plus_wins"] = wins
    report.extras["total_cells"] = len(report.rows)
    return report


# ---------------------------------------------------------------------------
# Table 5
# ---------------------------------------------------------------------------
def table5_udt_space(
    *,
    degree_bounds: Sequence[int] = (100, 1_000, 10_000),
    scale: float = 1.0,
    seed: Optional[int] = None,
) -> ExperimentReport:
    """Table 5: CSR size of the UDT-transformed graph vs original (%)."""
    report = ExperimentReport(
        "Table 5", "space cost of physical transformation (UDT), % of original CSR"
    )
    for name in dataset_names():
        graph = load_dataset(name, scale=scale, seed=seed, weighted=False)
        row = {"dataset": name}
        for k in degree_bounds:
            result = udt_transform(graph, k, dumb_weight=DumbWeight.NONE)
            ratio = result.stats.space_ratio(graph, result.graph)
            row[f"K={k}"] = f"{ratio * 100:.2f}%"
        report.add_row(**row)
    return report


# ---------------------------------------------------------------------------
# Table 6
# ---------------------------------------------------------------------------
def table6_virtual_space(
    *,
    degree_bounds: Sequence[int] = (4, 8, 16, 32, 100),
    scale: float = 1.0,
    seed: Optional[int] = None,
) -> ExperimentReport:
    """Table 6: virtually transformed CSR size vs original (%)."""
    report = ExperimentReport(
        "Table 6", "space cost of virtual transformation, % of original CSR"
    )
    for name in dataset_names():
        graph = load_dataset(name, scale=scale, seed=seed, weighted=False)
        row = {"dataset": name}
        for k in degree_bounds:
            ratio = virtual_transform(graph, k).space_ratio()
            row[f"K={k}"] = f"{ratio * 100:.2f}%"
        report.add_row(**row)
    return report


# ---------------------------------------------------------------------------
# Table 7
# ---------------------------------------------------------------------------
def table7_transform_time(
    *, scale: float = 1.0, seed: Optional[int] = None, repeats: int = 3
) -> ExperimentReport:
    """Table 7: host-side transformation wall-clock, physical vs virtual.

    Physical UDT walks every high-degree node's edges; virtual
    transformation only builds the virtual node array — the paper
    reports one to two orders of magnitude between them, and the same
    gap appears here.
    """
    report = ExperimentReport("Table 7", "transformation time cost (host ms)")
    for name in dataset_names():
        spec = DATASETS[name]
        graph = load_dataset(name, scale=scale, seed=seed)
        physical = min(
            _timed(lambda: udt_transform(graph, spec.k_udt)) for _ in range(repeats)
        )
        virtual = min(
            _timed(lambda: virtual_transform(graph, spec.k_v, coalesced=True))
            for _ in range(repeats)
        )
        report.add_row(
            dataset=name,
            physical_ms=physical * 1e3,
            virtual_ms=virtual * 1e3,
            ratio=physical / virtual if virtual > 0 else float("inf"),
        )
    report.extras["min_ratio"] = min(r["ratio"] for r in report.rows)
    return report


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


# ---------------------------------------------------------------------------
# Table 8
# ---------------------------------------------------------------------------
def table8_sssp_profile(
    *,
    dataset: str = "livejournal",
    degree_bound: int = 8,
    scale: float = 1.0,
    seed: Optional[int] = None,
    config: Optional[GPUConfig] = None,
) -> ExperimentReport:
    """Table 8: SSSP detail profile (LiveJournal, K = 8).

    Original vs physically (UDT) vs virtually transformed graph, with
    and without the worklist: iteration count, simulated time per
    iteration, instruction count, warp efficiency.
    """
    report = ExperimentReport(
        "Table 8", f"performance details (SSSP, {dataset}, K={degree_bound})"
    )
    config = config or GPUConfig()
    graph = load_dataset(dataset, scale=scale, seed=seed)
    source = default_source(graph)

    physical = udt_transform(graph, degree_bound, dumb_weight=DumbWeight.ZERO)
    virtual = virtual_transform(graph, degree_bound, coalesced=True)

    variants = {
        "original": (NodeScheduler(graph), None),
        "physical": (NodeScheduler(physical.graph), physical),
        "virtual": (VirtualScheduler(virtual), None),
    }
    for worklist in (False, True):
        for label, (scheduler, transform) in variants.items():
            simulator = GPUSimulator(config)
            result = sssp(
                scheduler, source,
                options=EngineOptions(worklist=worklist),
                simulator=simulator,
            )
            metrics = result.metrics
            report.add_row(
                variant=label,
                worklist="with" if worklist else "without",
                iterations=metrics.num_iterations,
                time_per_iter_ms=metrics.mean_time_per_iteration_ms,
                instructions=metrics.total_instructions,
                warp_efficiency=f"{metrics.warp_efficiency * 100:.2f}%",
                time_ms=metrics.total_time_ms,
            )
    return report
