"""Multi-device and interconnect configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.config import GPUConfig


@dataclass(frozen=True)
class InterconnectConfig:
    """The PCIe/NVLink model between devices.

    Transfers are costed per superstep as
    ``latency + bytes / bandwidth`` per device pair that exchanged
    messages; device kernels and transfers do not overlap (the
    conservative BSP assumption TOTEM also starts from).

    Defaults model PCIe 3.0 x16 scaled the same way as the device in
    :class:`repro.gpu.GPUConfig` — the ~1000× smaller graphs would
    otherwise make every exchange latency-only.
    """

    #: sustained bandwidth in bytes per millisecond (12 GB/s ≈ 1.2e7 B/ms).
    bandwidth_bytes_per_ms: float = 1.2e7
    #: per-exchange fixed latency in milliseconds (scaled-down 10 µs).
    latency_ms: float = 0.001

    def transfer_ms(self, total_bytes: int, exchanges: int) -> float:
        """Cost of moving ``total_bytes`` over ``exchanges`` exchanges."""
        if exchanges <= 0:
            return 0.0
        return self.latency_ms * exchanges + total_bytes / self.bandwidth_bytes_per_ms


@dataclass(frozen=True)
class MultiGPUConfig:
    """A homogeneous multi-device node."""

    num_devices: int = 2
    device: GPUConfig = field(default_factory=GPUConfig)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ValueError("num_devices must be >= 1")
