"""Multi-device BSP push engine.

One superstep: every device processes its active owned nodes with its
own scheduler (plain node scheduling, or Tigr virtual scheduling —
the whole point of the orthogonality claim), relaxes its local edges,
and the destinations it does not own become messages.  All updates
fold into the global value array at the superstep barrier (the
reductions are associative and commutative, so local-vs-remote apply
order cannot change results), then changed nodes form the next
frontier.

Superstep cost = the slowest device's kernel time (devices run
concurrently) + the interconnect exchange.  Results are, by
construction, identical to the single-device engine — asserted in
the tests, measured in ``benchmarks/bench_multigpu.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.core.virtual import virtual_transform
from repro.engine.program import PushProgram
from repro.engine.push import EngineOptions
from repro.engine.schedule import NodeScheduler, Scheduler, VirtualScheduler
from repro.errors import EngineError
from repro.gpu.metrics import RunMetrics
from repro.gpu.simulator import GPUSimulator
from repro.graph.csr import CSRGraph, NODE_DTYPE
from repro.multigpu.config import MultiGPUConfig
from repro.multigpu.partition import Partition, range_partition


@dataclass
class MultiGPUResult:
    """Outcome of a multi-device run."""

    values: np.ndarray
    num_supersteps: int
    converged: bool
    total_time_ms: float
    kernel_time_ms: float
    transfer_time_ms: float
    transfer_bytes: int
    remote_updates: int
    #: master->mirror value shipments (PowerLyra-style partitionings;
    #: zero for pure edge partitionings).
    mirror_syncs: int = 0
    device_metrics: List[RunMetrics] = field(default_factory=list)

    @property
    def transfer_fraction(self) -> float:
        """Share of time spent on the interconnect."""
        if self.total_time_ms == 0:
            return 0.0
        return self.transfer_time_ms / self.total_time_ms


#: bytes per remote update message: destination id + value.
MESSAGE_BYTES = 16


def run_multi_gpu(
    graph: CSRGraph,
    program: PushProgram,
    source: Optional[int] = None,
    *,
    config: Optional[MultiGPUConfig] = None,
    partitioner: Callable[[CSRGraph, int], List[Partition]] = range_partition,
    degree_bound: Optional[int] = None,
    coalesced: bool = True,
    options: EngineOptions = EngineOptions(),
) -> MultiGPUResult:
    """Run a push program across simulated devices.

    Parameters
    ----------
    degree_bound:
        ``None`` runs each device with plain node scheduling
        (TOTEM-style baseline); an integer applies Tigr's virtual
        transformation *per device partition* with that bound —
        demonstrating the §7.2 orthogonality claim.
    """
    config = config or MultiGPUConfig()
    if program.needs_weights and graph.weights is None:
        raise EngineError(f"program {program.name!r} needs edge weights")

    partitions = partitioner(graph, config.num_devices)
    owner = np.empty(graph.num_nodes, dtype=np.int64)
    for partition in partitions:
        owner[partition.owned] = partition.device
    # Vertex-cut partitionings (PowerLyra) place some hubs' edge
    # slices on non-owner devices; those devices must also process
    # the hub when it is active, after an explicit master->mirror
    # value sync that the interconnect accounting charges below.
    has_edges = np.zeros((config.num_devices, graph.num_nodes), dtype=bool)
    is_mirror = np.zeros((config.num_devices, graph.num_nodes), dtype=bool)
    for partition in partitions:
        sources = np.unique(partition.subgraph.edge_sources())
        has_edges[partition.device, sources] = True
        mirrored = getattr(partition, "mirrored", None)
        if mirrored is not None and len(mirrored):
            is_mirror[partition.device, mirrored] = True

    schedulers: List[Scheduler] = []
    simulators: List[GPUSimulator] = []
    for partition in partitions:
        if degree_bound is None:
            schedulers.append(NodeScheduler(partition.subgraph))
        else:
            schedulers.append(
                VirtualScheduler(
                    virtual_transform(partition.subgraph, degree_bound,
                                      coalesced=coalesced)
                )
            )
        simulators.append(GPUSimulator(config.device))

    n = graph.num_nodes
    values = program.initial_values(n, source)
    frontier = np.asarray(program.initial_frontier(n, source), dtype=NODE_DTYPE)

    converged = False
    supersteps = 0
    kernel_time = 0.0
    transfer_time = 0.0
    transfer_bytes = 0
    remote_updates = 0
    mirror_syncs = 0

    for _ in range(options.max_iterations):
        if len(frontier) == 0:
            converged = True
            break
        supersteps += 1
        before = values.copy()
        frontier_owner = owner[frontier]

        step_kernel_ms = 0.0
        step_exchanges = 0
        step_bytes = 0
        for partition, scheduler, simulator in zip(partitions, schedulers, simulators):
            device = partition.device
            local = frontier_owner == device
            mirror_here = is_mirror[device, frontier]
            active = frontier[local | mirror_here]
            # explicit synchronization: every active mirrored hub's
            # value must arrive from its master first
            synced = int(mirror_here.sum())
            if synced:
                mirror_syncs += synced
                step_bytes += synced * MESSAGE_BYTES
                step_exchanges += 1
            if len(active) == 0:
                continue
            batch = scheduler.batch(active)
            iteration = simulator.record_iteration(batch.trace())
            step_kernel_ms = max(step_kernel_ms, iteration.time_ms)

            eidx = batch.edge_indices()
            if len(eidx) == 0:
                continue
            sub = partition.subgraph
            src_vals = before[batch.sources_per_edge()]
            w = sub.weights[eidx] if sub.weights is not None else None
            candidates = program.relax(src_vals, w)
            dst = sub.targets[eidx]
            program.reduce.scatter(values, dst, candidates)

            # Interconnect accounting: updates to nodes another device
            # owns are aggregated per destination before shipping.
            remote = owner[dst] != partition.device
            if remote.any():
                unique_remote = np.unique(dst[remote])
                remote_updates += len(unique_remote)
                step_bytes += len(unique_remote) * MESSAGE_BYTES
                step_exchanges += len(np.unique(owner[unique_remote]))

        kernel_time += step_kernel_ms
        exchange_ms = config.interconnect.transfer_ms(step_bytes, step_exchanges)
        transfer_time += exchange_ms
        transfer_bytes += step_bytes

        changed = np.flatnonzero(values != before)
        if len(changed) == 0:
            converged = True
            break
        frontier = changed.astype(NODE_DTYPE)

    if not converged and options.require_convergence:
        raise EngineError(
            f"{program.name} (multi-GPU) did not converge within "
            f"{options.max_iterations} supersteps"
        )
    return MultiGPUResult(
        values=values,
        num_supersteps=supersteps,
        converged=converged,
        total_time_ms=kernel_time + transfer_time,
        kernel_time_ms=kernel_time,
        transfer_time_ms=transfer_time,
        transfer_bytes=transfer_bytes,
        remote_updates=remote_updates,
        mirror_syncs=mirror_syncs,
        device_metrics=[sim.finish() for sim in simulators],
    )
