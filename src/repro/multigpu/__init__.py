"""Multi-GPU partitioned graph processing (TOTEM/Medusa-class, §7.2).

The paper's related work lists multi-GPU systems and closes with "our
proposed methods are orthogonal to these existing techniques."  This
package makes that claim executable: a graph is partitioned across
several simulated devices, each device runs the vertex-centric push
engine on its owned nodes — with *any* scheduler, including Tigr's
virtual scheduling — and remote value updates cross a modelled
interconnect between supersteps.

The orthogonality experiment (``benchmarks/bench_multigpu.py``) shows
Tigr's per-device speedup surviving at every device count: splitting
the graph across devices does not remove the intra-device warp
imbalance, and Tigr still removes it.
"""

from repro.multigpu.config import InterconnectConfig, MultiGPUConfig
from repro.multigpu.engine import MultiGPUResult, run_multi_gpu
from repro.multigpu.partition import (
    MirroredPartition,
    Partition,
    hash_partition,
    inedge_owner,
    inedge_partition,
    mirror_count,
    partition_balance,
    powerlyra_partition,
    range_partition,
)

__all__ = [
    "MultiGPUConfig",
    "InterconnectConfig",
    "Partition",
    "range_partition",
    "hash_partition",
    "inedge_owner",
    "inedge_partition",
    "powerlyra_partition",
    "MirroredPartition",
    "mirror_count",
    "partition_balance",
    "run_multi_gpu",
    "MultiGPUResult",
]
