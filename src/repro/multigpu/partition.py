"""Graph partitioning for multi-device execution.

Push-based multi-GPU processing partitions by *source ownership*: a
device owns a set of nodes and holds exactly the edges leaving them
(so every push a device computes originates locally).  Destination
nodes may be remote; their updates become interconnect messages.

Two standard strategies:

* :func:`range_partition` — contiguous node ranges balanced by edge
  count (what TOTEM does by default; preserves locality of ordered
  graphs);
* :func:`hash_partition` — round-robin ownership (destroys locality
  but balances hub placement, the poor man's PowerLyra).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import from_arrays
from repro.graph.csr import CSRGraph, NODE_DTYPE


@dataclass(frozen=True)
class Partition:
    """One device's share of the graph.

    ``subgraph`` keeps *global* node ids (it has the full node count
    but only the owned nodes' out-edges), so value arrays stay global
    and no id translation is needed — the simplification TOTEM calls
    the "global state" layout.
    """

    device: int
    owned: np.ndarray
    subgraph: CSRGraph

    @property
    def num_owned(self) -> int:
        return len(self.owned)

    @property
    def num_edges(self) -> int:
        return self.subgraph.num_edges

    def owns(self, nodes: np.ndarray) -> np.ndarray:
        """Boolean mask: which of ``nodes`` this device owns."""
        mask = np.zeros(self.subgraph.num_nodes, dtype=bool)
        mask[self.owned] = True
        return mask[nodes]


def _build(graph: CSRGraph, owner: np.ndarray, num_devices: int) -> List[Partition]:
    src, dst, weights = graph.to_coo()
    edge_owner = owner[src]
    partitions = []
    for device in range(num_devices):
        keep = edge_owner == device
        subgraph = from_arrays(
            src[keep], dst[keep],
            None if weights is None else weights[keep],
            num_nodes=graph.num_nodes,
        )
        owned = np.flatnonzero(owner == device).astype(NODE_DTYPE)
        partitions.append(Partition(device=device, owned=owned, subgraph=subgraph))
    return partitions


def range_partition(graph: CSRGraph, num_devices: int) -> List[Partition]:
    """Contiguous ranges with (approximately) equal edge counts.

    Boundaries are placed on the cumulative outdegree curve so each
    device gets ~|E|/D edges regardless of where the hubs sit.
    """
    if num_devices < 1:
        raise GraphError("num_devices must be >= 1")
    n = graph.num_nodes
    owner = np.zeros(n, dtype=np.int64)
    if n:
        cumulative = np.cumsum(graph.out_degrees())
        total = int(cumulative[-1]) if len(cumulative) else 0
        if total:
            targets = np.arange(1, num_devices) * (total / num_devices)
            boundaries = np.searchsorted(cumulative, targets)
            owner = np.searchsorted(boundaries, np.arange(n), side="right")
        else:
            owner = (np.arange(n) * num_devices) // max(n, 1)
    return _build(graph, owner, num_devices)


def inedge_owner(graph: CSRGraph, num_devices: int) -> np.ndarray:
    """Destination ownership by (approximately) equal *in*-edge counts.

    The gather-side dual of :func:`range_partition`: boundaries sit on
    the cumulative indegree curve, so each device owns a contiguous
    destination range receiving ~|E|/D edges.  Returns the per-node
    owner array; :func:`inedge_partition` and the sharded serving tier
    (:mod:`repro.service.sharding`) build edge slices from it with
    ``owner[dst]`` membership, which makes every node's *complete*
    in-edge set land on exactly one device — the property that lets a
    scatter-gather reduce preserve per-destination results bitwise.
    """
    if num_devices < 1:
        raise GraphError("num_devices must be >= 1")
    n = graph.num_nodes
    owner = np.zeros(n, dtype=np.int64)
    if n:
        cumulative = np.cumsum(graph.in_degrees())
        total = int(cumulative[-1]) if len(cumulative) else 0
        if total:
            targets = np.arange(1, num_devices) * (total / num_devices)
            boundaries = np.searchsorted(cumulative, targets)
            owner = np.searchsorted(boundaries, np.arange(n), side="right")
        else:
            owner = (np.arange(n) * num_devices) // max(n, 1)
    return owner


def inedge_partition(graph: CSRGraph, num_devices: int) -> List[Partition]:
    """Contiguous destination ranges with ~equal in-edge counts.

    Edges follow their *destination*'s owner (``owner[dst]``), unlike
    :func:`range_partition`'s source ownership: each device holds every
    in-edge of the nodes it owns and nothing else, so destination
    updates never cross devices.
    """
    owner = inedge_owner(graph, num_devices)
    src, dst, weights = graph.to_coo()
    edge_owner = owner[dst] if len(dst) else np.zeros(0, dtype=np.int64)
    partitions = []
    for device in range(num_devices):
        keep = edge_owner == device
        subgraph = from_arrays(
            src[keep], dst[keep],
            None if weights is None else weights[keep],
            num_nodes=graph.num_nodes,
        )
        owned = np.flatnonzero(owner == device).astype(NODE_DTYPE)
        partitions.append(Partition(device=device, owned=owned, subgraph=subgraph))
    return partitions


def hash_partition(graph: CSRGraph, num_devices: int) -> List[Partition]:
    """Round-robin node ownership (id modulo device count)."""
    if num_devices < 1:
        raise GraphError("num_devices must be >= 1")
    owner = np.arange(graph.num_nodes, dtype=np.int64) % num_devices
    return _build(graph, owner, num_devices)


def partition_balance(partitions: List[Partition]) -> float:
    """Edge imbalance: max device edges over mean (1.0 = perfect)."""
    edges = [p.num_edges for p in partitions]
    mean = sum(edges) / max(len(edges), 1)
    if mean == 0:
        return 1.0
    return max(edges) / mean


@dataclass(frozen=True)
class MirroredPartition(Partition):
    """A partition that also hosts *mirror* slices of non-owned hubs.

    ``mirrored`` lists the high-degree nodes whose out-edge slices this
    device executes although another device masters their value —
    PowerLyra's vertex-cut for the skewed tail.  Every time such a
    hub's value changes, the master must ship it to this mirror before
    the next superstep: the *explicit synchronization* §7.1 contrasts
    with Tigr's implicit one.
    """

    mirrored: np.ndarray = None  # type: ignore[assignment]


def powerlyra_partition(
    graph: CSRGraph,
    num_devices: int,
    *,
    high_degree_threshold: Optional[int] = None,
) -> List[MirroredPartition]:
    """PowerLyra-style differentiated partitioning [9].

    Low-degree nodes are edge-partitioned by owner (as in
    :func:`range_partition`); high-degree nodes' out-edges are *split
    round-robin across all devices* (vertex-cut), so no single device
    carries a whole hub.  The threshold defaults to ``|E| / |V| * 8``
    — roughly PowerLyra's "high-degree" regime on power-law inputs.

    The structural kinship with Tigr's split transformation is exactly
    what §7.1 discusses; the differences (explicit mirror sync,
    replication) are what the multi-GPU engine charges for.
    """
    if num_devices < 1:
        raise GraphError("num_devices must be >= 1")
    n = graph.num_nodes
    degrees = graph.out_degrees()
    if high_degree_threshold is None:
        mean = graph.num_edges / max(n, 1)
        high_degree_threshold = max(8, int(mean * 8))
    high = degrees > high_degree_threshold

    # Owners: low-degree nodes by balanced ranges over their edges;
    # high-degree nodes are mastered round-robin.
    owner = np.zeros(n, dtype=np.int64)
    low_nodes = np.flatnonzero(~high)
    if len(low_nodes):
        cumulative = np.cumsum(degrees[low_nodes])
        total = int(cumulative[-1]) if len(cumulative) else 0
        if total:
            targets = np.arange(1, num_devices) * (total / num_devices)
            boundaries = np.searchsorted(cumulative, targets)
            owner[low_nodes] = np.searchsorted(
                boundaries, np.arange(len(low_nodes)), side="right"
            )
        else:
            owner[low_nodes] = (np.arange(len(low_nodes)) * num_devices) // max(
                len(low_nodes), 1
            )
    high_nodes = np.flatnonzero(high)
    owner[high_nodes] = np.arange(len(high_nodes)) % num_devices

    src, dst, weights = graph.to_coo()
    # Edge placement: low-degree edges follow their owner; high-degree
    # edges round-robin across devices by slot index.
    edge_device = owner[src].copy()
    high_edge = high[src]
    edge_device[high_edge] = np.arange(int(high_edge.sum())) % num_devices

    partitions: List[MirroredPartition] = []
    for device in range(num_devices):
        keep = edge_device == device
        subgraph = from_arrays(
            src[keep], dst[keep],
            None if weights is None else weights[keep],
            num_nodes=n,
        )
        owned = np.flatnonzero(owner == device).astype(NODE_DTYPE)
        sources_here = np.unique(src[keep])
        mirrored = sources_here[
            high[sources_here] & (owner[sources_here] != device)
        ].astype(NODE_DTYPE)
        partitions.append(
            MirroredPartition(
                device=device, owned=owned, subgraph=subgraph, mirrored=mirrored
            )
        )
    return partitions


def mirror_count(partitions: List[MirroredPartition]) -> int:
    """Total (hub, mirror-device) replicas across the partitioning."""
    return int(sum(len(p.mirrored) for p in partitions if p.mirrored is not None))
