"""Gunrock [69] — frontier-centric, load-balanced advance model.

Gunrock's advance operator partitions the frontier's edges evenly over
threads (perfect balance, coalesced-ish access) but pays for it: the
load-balancing search adds per-edge instructions, and each iteration
runs a multi-kernel advance + filter pipeline with compaction.  That
makes it much faster than MW/baseline on frontier analytics, yet
consistently behind Tigr-V+, whose virtual nodes get balance "for
free" from the data layout — the ~1.5–3× gaps of Table 4.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines._run import run_algorithm
from repro.baselines.base import Method, MethodResult
from repro.baselines.memory import gunrock_bytes
from repro.engine.push import EngineOptions
from repro.engine.schedule import EdgeParallelScheduler
from repro.gpu.config import GPUConfig, KernelProfile
from repro.gpu.simulator import GPUSimulator
from repro.graph.csr import CSRGraph


class GunrockMethod(Method):
    """Frontier-driven edge-parallel engine with pipeline overheads."""

    name = "gunrock"

    def __init__(self) -> None:
        self.profile = KernelProfile(
            name=self.name,
            # per-edge binary search / sorted-search load balancing.
            cycles_per_step=11.0,
            # each edge-thread locates its (source, edge) pair with a
            # binary search over the scanned frontier offsets.
            cycles_per_thread=60.0,
            instructions_per_edge=18.0,
            instructions_per_thread=24.0,
            # advance + filter + compaction kernels per iteration.
            launches_per_iteration=3,
        )

    def supports(self, algorithm: str) -> bool:
        # Gunrock ships no SSWP primitive (Table 4).
        return algorithm in ("bfs", "sssp", "cc", "bc", "pr")

    def footprint(self, graph: CSRGraph, algorithm: str) -> int:
        return gunrock_bytes(graph, algorithm)

    def _execute(
        self, graph: CSRGraph, algorithm: str, source: Optional[int], config: GPUConfig
    ) -> MethodResult:
        simulator = GPUSimulator(config, self.profile)
        values, metrics, _ = run_algorithm(
            EdgeParallelScheduler(graph), algorithm, source,
            EngineOptions(worklist=True), simulator,
        )
        return MethodResult(
            method=self.name, algorithm=algorithm, values=values,
            time_ms=metrics.total_time_ms, metrics=metrics,
        )
