"""The paper's lightweight GPU engine with Tigr disabled (``baseline``).

One thread per node over plain CSR, worklist enabled — the reference
point for Figure 13's speedups.  Its inefficiency on power-law graphs
is the intra/inter-warp load imbalance of §2.3: a warp containing one
hub node idles 31 lanes for thousands of SIMD steps.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines._run import run_algorithm
from repro.baselines.base import Method, MethodResult
from repro.baselines.memory import baseline_bytes
from repro.engine.push import EngineOptions
from repro.engine.schedule import NodeScheduler
from repro.gpu.config import GPUConfig, KernelProfile
from repro.gpu.simulator import GPUSimulator
from repro.graph.csr import CSRGraph


class BaselineMethod(Method):
    """Node-scheduled engine on the untransformed graph."""

    name = "baseline"

    def __init__(self, *, worklist: bool = True) -> None:
        self.worklist = worklist
        self.profile = KernelProfile(name=self.name)

    def supports(self, algorithm: str) -> bool:
        return algorithm in ("bfs", "sssp", "sswp", "cc", "bc", "pr")

    def footprint(self, graph: CSRGraph, algorithm: str) -> int:
        return baseline_bytes(graph, algorithm)

    def _execute(
        self, graph: CSRGraph, algorithm: str, source: Optional[int], config: GPUConfig
    ) -> MethodResult:
        simulator = GPUSimulator(config, self.profile)
        options = EngineOptions(worklist=self.worklist)
        values, metrics, _ = run_algorithm(
            NodeScheduler(graph), algorithm, source, options, simulator
        )
        return MethodResult(
            method=self.name, algorithm=algorithm, values=values,
            time_ms=metrics.total_time_ms, metrics=metrics,
        )
