"""Models of the evaluated methods (Table 2 of the paper).

Each :class:`~repro.baselines.base.Method` couples a scheduling
discipline, a kernel cost profile, and a device-memory footprint
model, reproducing the performance *character* of the corresponding
framework:

==============  ===========================================================
``baseline``    the paper's lightweight engine with Tigr disabled
                (thread per node, worklist)
``tigr-udt``    physical UDT transformation + baseline engine
``tigr-v``      virtual node array scheduling (Algorithm 2)
``tigr-v+``     virtual + edge-array coalescing (Algorithm 3)
``mw``          Maximum Warp [23]: sub-warp decomposition, best
                virtual warp size in 2..32, all nodes every iteration
``cusha``       CuSha [32]: shard-based processing — perfectly
                balanced and coalesced, but streams the whole edge
                array every iteration and pays an edge-replicated
                memory footprint
``gunrock``     Gunrock [69]: frontier-based, per-edge load-balanced
                advance with multi-kernel iteration overhead
==============  ===========================================================
"""

from repro.baselines.base import ALGORITHMS, AlgorithmSpec, Method, MethodResult, prepare_graph
from repro.baselines.cusha import CuShaMethod
from repro.baselines.gunrock import GunrockMethod
from repro.baselines.hardwired import (
    DeltaSteppingSSSPMethod,
    DirectionOptimizingBFSMethod,
    GASPageRankMethod,
    PointerJumpingCCMethod,
    hardwired_methods,
)
from repro.baselines.maxwarp import MaxWarpMethod
from repro.baselines.memory import footprint_bytes
from repro.baselines.simple import BaselineMethod
from repro.baselines.streaming import StreamingTigrMethod
from repro.baselines.subway import SubwayMethod
from repro.baselines.tigr import TigrUDTMethod, TigrVirtualMethod

__all__ = [
    "Method",
    "MethodResult",
    "AlgorithmSpec",
    "ALGORITHMS",
    "prepare_graph",
    "BaselineMethod",
    "StreamingTigrMethod",
    "SubwayMethod",
    "TigrUDTMethod",
    "TigrVirtualMethod",
    "MaxWarpMethod",
    "CuShaMethod",
    "GunrockMethod",
    "DirectionOptimizingBFSMethod",
    "DeltaSteppingSSSPMethod",
    "PointerJumpingCCMethod",
    "GASPageRankMethod",
    "hardwired_methods",
    "footprint_bytes",
]


def standard_methods(k_udt: int = 64, k_v: int = 10) -> list:
    """The Table 2 line-up, ready to run."""
    return [
        MaxWarpMethod(),
        CuShaMethod(),
        GunrockMethod(),
        BaselineMethod(),
        TigrUDTMethod(degree_bound=k_udt),
        TigrVirtualMethod(degree_bound=k_v, coalesced=False),
        TigrVirtualMethod(degree_bound=k_v, coalesced=True),
    ]
