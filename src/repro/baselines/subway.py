"""Subway-style active-subgraph streaming (the notable follow-on).

Subway (Sabet, Zhao & Gupta, EuroSys'20 — the same group's sequel to
Tigr) observed that when a graph exceeds device memory, streaming
*whole partitions* (GraphReduce-class, `repro.baselines.streaming`)
ships mostly-inactive edges: in frontier analytics only a sliver of
the graph is active per iteration.  Subway instead generates, each
iteration, the compact subgraph of the *active* vertices' edges and
transfers exactly that.

:class:`SubwayMethod` models the idea on top of the Tigr-V+ engine:
identical results, never OOMs, and its per-iteration transfer volume
is the active edges (plus a subgraph-generation cost on the host
side), which the comparison test shows undercuts partition streaming
by a wide margin on frontier analytics.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.baselines._run import run_algorithm
from repro.baselines.base import Method, MethodResult
from repro.baselines.streaming import (
    STREAM_BANDWIDTH_BYTES_PER_MS,
    STREAM_LATENCY_MS,
    StreamingTigrMethod,
)
from repro.core.virtual import virtual_transform
from repro.engine.push import EngineOptions
from repro.engine.schedule import VirtualScheduler
from repro.gpu.config import GPUConfig, KernelProfile
from repro.gpu.simulator import GPUSimulator
from repro.graph.csr import CSRGraph

#: bytes per transferred edge record of the generated subgraph
#: (target + weight, like the resident layout).
SUBGRAPH_EDGE_BYTES = 16
#: host-side subgraph generation throughput, edges per ms (SIMD scan
#: over the offsets + gather; scaled like the other host constants).
GENERATION_EDGES_PER_MS = 5.0e5


class SubwayMethod(Method):
    """Tigr-V+ with per-iteration active-subgraph transfers.

    Only charged when the full working set exceeds device memory —
    when everything fits, the graph loads once and Subway degenerates
    to plain Tigr-V+ (as the real system does).
    """

    name = "tigr-subway"

    def __init__(self, degree_bound: int = 10) -> None:
        self.degree_bound = int(degree_bound)
        self.profile = KernelProfile(name=self.name)
        self._fits_helper = StreamingTigrMethod(degree_bound)

    def supports(self, algorithm: str) -> bool:
        return algorithm in ("bfs", "sssp", "sswp", "cc", "bc", "pr")

    def footprint(self, graph: CSRGraph, algorithm: str) -> int:
        """Resident set: value arrays plus the largest per-iteration
        active subgraph is bounded by the budget by construction."""
        return 4 * graph.num_nodes * 8

    def _execute(
        self, graph: CSRGraph, algorithm: str, source: Optional[int], config: GPUConfig
    ) -> MethodResult:
        start = time.perf_counter()
        virtual = virtual_transform(graph, self.degree_bound, coalesced=True)
        transform_seconds = time.perf_counter() - start

        simulator = GPUSimulator(config, self.profile)
        values, metrics, _ = run_algorithm(
            VirtualScheduler(virtual), algorithm, source,
            EngineOptions(worklist=True), simulator,
        )

        partitions, _ = self._fits_helper.plan_streaming(graph, config)
        stream_ms = 0.0
        streamed_bytes = 0.0
        generation_ms = 0.0
        if partitions > 1:  # oversubscribed: Subway kicks in
            for it in metrics.iterations:
                it_bytes = it.edges_processed * SUBGRAPH_EDGE_BYTES
                streamed_bytes += it_bytes
                stream_ms += STREAM_LATENCY_MS + it_bytes / STREAM_BANDWIDTH_BYTES_PER_MS
                generation_ms += it.edges_processed / GENERATION_EDGES_PER_MS
        return MethodResult(
            method=self.name, algorithm=algorithm, values=values,
            time_ms=metrics.total_time_ms + stream_ms + generation_ms,
            metrics=metrics,
            transform_seconds=transform_seconds,
            notes={
                "oversubscribed": float(partitions > 1),
                "stream_ms": stream_ms,
                "generation_ms": generation_ms,
                "streamed_bytes": streamed_bytes,
            },
        )
