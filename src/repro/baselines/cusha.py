"""CuSha [32] — shard-based processing model.

CuSha reorganises the graph into G-Shards (or Concatenated Windows):
edges grouped by destination shard, processed edge-parallel with fully
coalesced loads and privatised (shared-memory) value accumulation.
Two things follow, both visible in Table 4:

* superb per-edge efficiency — CuSha wins PR (all nodes active every
  iteration is exactly the workload shards are built for) and is
  competitive on early-dense analytics like CC;
* the whole edge array streams through every iteration regardless of
  frontier size, so sparse-frontier analytics (BFS, SSSP) pay for
  every edge each round — and the edge-replicated representation
  OOMs first on the largest graphs.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines._run import run_algorithm
from repro.baselines.base import Method, MethodResult
from repro.baselines.memory import cusha_bytes
from repro.engine.push import EngineOptions
from repro.engine.schedule import EdgeParallelScheduler
from repro.gpu.config import GPUConfig, KernelProfile
from repro.gpu.simulator import GPUSimulator
from repro.graph.csr import CSRGraph


class CuShaMethod(Method):
    """Edge-parallel all-active processing with shard-privatised values."""

    name = "cusha"

    def __init__(self) -> None:
        self.profile = KernelProfile(
            name=self.name,
            # shards privatise value updates into shared memory and
            # write back once per shard: far fewer random transactions.
            value_access_factor=0.3,
            cycles_per_step=5.0,
            # compute+writeback kernel pair per iteration.
            launches_per_iteration=2,
        )

    def supports(self, algorithm: str) -> bool:
        # the public CuSha repository lacks BC (Table 4).
        return algorithm in ("bfs", "sssp", "sswp", "cc", "pr")

    def footprint(self, graph: CSRGraph, algorithm: str) -> int:
        return cusha_bytes(graph, algorithm)

    def _execute(
        self, graph: CSRGraph, algorithm: str, source: Optional[int], config: GPUConfig
    ) -> MethodResult:
        simulator = GPUSimulator(config, self.profile)
        values, metrics, _ = run_algorithm(
            EdgeParallelScheduler(graph), algorithm, source,
            EngineOptions(worklist=False), simulator,
        )
        return MethodResult(
            method=self.name, algorithm=algorithm, values=values,
            time_ms=metrics.total_time_ms, metrics=metrics,
        )
