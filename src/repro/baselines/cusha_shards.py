"""G-Shards and Concatenated Windows — CuSha's graph representation.

CuSha [32] abandons CSR for *shards*: destination-partitioned edge
groups sized so one shard's value window fits in an SM's shared
memory.  Within a shard, edges are sorted by source, so the gather of
source values streams coalesced; results accumulate in shared memory
and write back once per shard (no atomics).  *Concatenated Windows*
(CW) further groups each shard's edges by source window so the source
value loads of consecutive shards concatenate into long coalesced
runs.

This module builds the actual data structure (not just a cost model):
:class:`GShards` materialises shard-ordered edge arrays with window
index tables, supports a pull-style compute pass with any associative
reduction, and accounts its storage — the representation blow-up
behind CuSha's Table 4 OOMs.  The test suite checks that shard-based
processing yields bit-identical analytics results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.engine.program import PushProgram
from repro.errors import EngineError
from repro.graph.csr import CSRGraph, NODE_DTYPE


@dataclass(frozen=True)
class GShards:
    """A graph in G-Shards form.

    Edges are stored in one flat (src, dst, weight) triple sorted by
    ``(shard_of(dst), src)``; ``shard_offsets[i]:shard_offsets[i+1]``
    is shard ``i``.  ``window_offsets[i, j]`` marks, inside shard
    ``i``, where the edges whose *source* lies in shard ``j`` begin —
    the Concatenated Windows index.
    """

    num_nodes: int
    shard_size: int
    src: np.ndarray
    dst: np.ndarray
    weights: Optional[np.ndarray]
    shard_offsets: np.ndarray
    window_offsets: np.ndarray

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shard_offsets) - 1

    @property
    def num_edges(self) -> int:
        return len(self.src)

    def shard_of(self, node: int) -> int:
        """Which shard owns a node's value window."""
        return int(node) // self.shard_size

    def shard_edges(self, shard: int) -> slice:
        """Flat-array slice of one shard's edges."""
        return slice(int(self.shard_offsets[shard]), int(self.shard_offsets[shard + 1]))

    def window(self, shard: int, source_shard: int) -> slice:
        """Edges of ``shard`` whose sources live in ``source_shard``."""
        return slice(
            int(self.window_offsets[shard, source_shard]),
            int(self.window_offsets[shard, source_shard + 1]),
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: CSRGraph, shard_size: int) -> "GShards":
        """Convert a CSR graph into G-Shards.

        ``shard_size`` is the number of node values one shard's shared
        memory window holds (CuSha derives it from the 48 KB shared
        memory of the target SM).
        """
        if shard_size < 1:
            raise EngineError(f"shard size must be >= 1, got {shard_size}")
        n = graph.num_nodes
        src, dst, weights = graph.to_coo()
        num_shards = max(1, -(-n // shard_size))

        dst_shard = dst // shard_size
        src_shard = src // shard_size
        # sort by (destination shard, source) — the G-Shards order;
        # sorting by source *shard* first then source keeps windows
        # contiguous and sources coalesced within each window.
        order = np.lexsort((src, src_shard, dst_shard))
        src, dst = src[order], dst[order]
        if weights is not None:
            weights = weights[order]
        dst_shard = dst_shard[order]
        src_shard = src_shard[order]

        shard_offsets = np.zeros(num_shards + 1, dtype=NODE_DTYPE)
        np.cumsum(np.bincount(dst_shard, minlength=num_shards), out=shard_offsets[1:])

        window_offsets = np.zeros((num_shards, num_shards + 1), dtype=NODE_DTYPE)
        for shard in range(num_shards):
            lo, hi = int(shard_offsets[shard]), int(shard_offsets[shard + 1])
            counts = np.bincount(src_shard[lo:hi], minlength=num_shards)
            window_offsets[shard, 0] = lo
            np.cumsum(counts, out=window_offsets[shard, 1:])
            window_offsets[shard, 1:] += lo

        return cls(
            num_nodes=n, shard_size=int(shard_size),
            src=src, dst=dst, weights=weights,
            shard_offsets=shard_offsets, window_offsets=window_offsets,
        )

    # ------------------------------------------------------------------
    # Compute pass
    # ------------------------------------------------------------------
    def compute_iteration(
        self,
        values: np.ndarray,
        relax: Callable[[np.ndarray, Optional[np.ndarray]], np.ndarray],
        scatter: Callable[[np.ndarray, np.ndarray, np.ndarray], None],
    ) -> np.ndarray:
        """One CuSha iteration: per shard, gather → reduce → write back.

        ``relax(source_values, edge_weights)`` produces candidates;
        ``scatter(window_values, local_dst, candidates)`` folds them
        into the shard's private window (shared memory in the real
        kernel — no atomics needed because one shard's window is owned
        by one thread block).  Returns the updated value array; the
        input array is not modified (bulk-synchronous semantics).
        """
        new_values = values.copy()
        for shard in range(self.num_shards):
            span = self.shard_edges(shard)
            if span.start == span.stop:
                continue
            base = shard * self.shard_size
            window = new_values[base : base + self.shard_size].copy()
            candidates = relax(
                values[self.src[span]],
                None if self.weights is None else self.weights[span],
            )
            scatter(window, self.dst[span] - base, candidates)
            new_values[base : base + self.shard_size] = window
        return new_values

    def run_program(
        self,
        program: PushProgram,
        source: Optional[int],
        *,
        max_iterations: int = 100_000,
    ):
        """Run a vertex program to convergence on the shards.

        Shard processing is pull-flavoured (each shard folds incoming
        candidates into its own window), and the program's reduction
        is associative, so this converges to the same fixed point as
        the push engines — verified by the tests.
        Returns ``(values, iterations)``.
        """
        values = program.initial_values(self.num_nodes, source)

        def scatter(window, local_dst, candidates):
            program.reduce.scatter(window, local_dst, candidates)

        iterations = 0
        for _ in range(max_iterations):
            iterations += 1
            new_values = self.compute_iteration(values, program.relax, scatter)
            if np.array_equal(new_values, values):
                break
            values = new_values
        else:
            raise EngineError(
                f"{program.name} did not converge within {max_iterations} shard sweeps"
            )
        return values, iterations

    def run_program_cw(
        self,
        program: PushProgram,
        source: Optional[int],
        *,
        max_iterations: int = 100_000,
    ):
        """Concatenated-Windows variant: skip stale windows.

        CuSha's CW optimisation records which source *windows* hold
        values that changed last sweep; a shard only re-processes the
        windows whose sources changed.  Results are identical to
        :meth:`run_program` (monotone folds are idempotent on stale
        inputs); the saving is the skipped edge work, which the
        returned ``edges_processed`` exposes.
        Returns ``(values, iterations, edges_processed)``.
        """
        values = program.initial_values(self.num_nodes, source)
        # every source window starts dirty (initial values "changed")
        dirty = np.ones(self.num_shards, dtype=bool)
        iterations = 0
        edges_processed = 0
        for _ in range(max_iterations):
            iterations += 1
            new_values = values.copy()
            for shard in range(self.num_shards):
                base = shard * self.shard_size
                window = new_values[base : base + self.shard_size].copy()
                touched = False
                for source_shard in np.flatnonzero(dirty):
                    span = self.window(shard, int(source_shard))
                    if span.start == span.stop:
                        continue
                    touched = True
                    edges_processed += span.stop - span.start
                    candidates = program.relax(
                        values[self.src[span]],
                        None if self.weights is None else self.weights[span],
                    )
                    program.reduce.scatter(window, self.dst[span] - base, candidates)
                if touched:
                    new_values[base : base + self.shard_size] = window
            changed = new_values != values
            if not changed.any():
                break
            # a source window is dirty iff any of its nodes changed
            dirty = np.zeros(self.num_shards, dtype=bool)
            changed_nodes = np.flatnonzero(changed)
            dirty[np.unique(changed_nodes // self.shard_size)] = True
            values = new_values
        else:
            raise EngineError(
                f"{program.name} (CW) did not converge within {max_iterations} sweeps"
            )
        return values, iterations, edges_processed

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def storage_words(self) -> int:
        """Words the representation keeps resident.

        Three (or four, weighted) words per edge plus the shard and
        window tables — the edge replication that makes CuSha the
        first framework to OOM as graphs grow.
        """
        per_edge = 3 if self.weights is None else 4
        return (
            per_edge * self.num_edges
            + len(self.shard_offsets)
            + self.window_offsets.size
            + 2 * self.num_nodes  # double-buffered value windows
        )
