"""Gunrock's frontier-operator programming abstraction, working.

The paper positions Tigr against systems that "change the graph
programming paradigm" (§1): Gunrock [69] programs analytics as
pipelines of *frontier operators* rather than vertex functions.  This
module implements that abstraction for real — not just its cost
profile — so the contrast is executable:

* :meth:`Operators.advance` — expand a frontier along its edges,
  applying a per-edge condition/apply functor and emitting the
  output frontier;
* :meth:`Operators.filter` — compact a frontier by a predicate;
* :meth:`Operators.compute` — apply a per-node function to a frontier.

:func:`gunrock_bfs`, :func:`gunrock_sssp` and :func:`gunrock_cc` are
written purely in terms of these operators, the way a Gunrock user
would write them, and the tests pin their results to the oracles.
Note what adopting the paradigm costs compared to the one-line vertex
functions of :mod:`repro.algorithms.programs` — exactly the adoption
overhead the paper's introduction argues Tigr avoids.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.errors import EngineError
from repro.gpu.simulator import GPUSimulator
from repro.gpu.warp import WorkTrace
from repro.graph.csr import CSRGraph, NODE_DTYPE
from repro.indexing import ranges_to_indices

#: an advance functor: (src ids, dst ids, edge slots, state) -> bool mask
#: of edges whose destination enters the output frontier.
AdvanceFunctor = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]


class Operators:
    """Gunrock-style operator set bound to one graph (+ simulator).

    Every operator launch is costed edge-/node-parallel on the
    simulator when one is attached, mirroring Gunrock's multi-kernel
    iterations.
    """

    def __init__(self, graph: CSRGraph, simulator: Optional[GPUSimulator] = None) -> None:
        self.graph = graph
        self.simulator = simulator
        self.launches = 0

    # ------------------------------------------------------------------
    def _record(self, trace: WorkTrace) -> None:
        self.launches += 1
        if self.simulator is not None:
            self.simulator.record_iteration(trace)

    # ------------------------------------------------------------------
    def advance(
        self, frontier: np.ndarray, functor: AdvanceFunctor
    ) -> Tuple[np.ndarray, int]:
        """Visit every edge of the frontier; keep destinations the
        functor admits.  Returns ``(output frontier, edges visited)``.

        The output frontier is deduplicated — Gunrock's idempotent
        filter would otherwise carry duplicates to the next pass.
        """
        frontier = np.asarray(frontier, dtype=NODE_DTYPE)
        starts = self.graph.offsets[frontier]
        counts = self.graph.offsets[frontier + 1] - starts
        slots = ranges_to_indices(starts, counts)
        self._record(WorkTrace.uniform(len(slots), 1))
        if len(slots) == 0:
            return np.zeros(0, dtype=NODE_DTYPE), 0
        src = np.repeat(frontier, counts)
        dst = self.graph.targets[slots]
        admitted = functor(src, dst, slots)
        if admitted.dtype != bool or admitted.shape != dst.shape:
            raise EngineError("advance functor must return a boolean edge mask")
        return np.unique(dst[admitted]), len(slots)

    def filter(
        self, frontier: np.ndarray, predicate: Callable[[np.ndarray], np.ndarray]
    ) -> np.ndarray:
        """Compact a frontier to the nodes the predicate admits."""
        frontier = np.asarray(frontier, dtype=NODE_DTYPE)
        self._record(WorkTrace.uniform(len(frontier), 1))
        if len(frontier) == 0:
            return frontier
        keep = predicate(frontier)
        return frontier[keep]

    def compute(
        self, frontier: np.ndarray, op: Callable[[np.ndarray], None]
    ) -> None:
        """Apply a per-node operation across a frontier."""
        frontier = np.asarray(frontier, dtype=NODE_DTYPE)
        self._record(WorkTrace.uniform(len(frontier), 1))
        if len(frontier):
            op(frontier)


# ---------------------------------------------------------------------------
# The three classic Gunrock applications, operator-style
# ---------------------------------------------------------------------------
def gunrock_bfs(
    graph: CSRGraph, source: int, *, simulator: Optional[GPUSimulator] = None
) -> Tuple[np.ndarray, int]:
    """BFS as an advance/filter pipeline.  Returns (levels, launches)."""
    ops = Operators(graph, simulator)
    labels = np.full(graph.num_nodes, np.inf)
    labels[source] = 0.0
    frontier = np.asarray([source], dtype=NODE_DTYPE)
    level = 0
    while len(frontier):
        level += 1

        def functor(src, dst, slots, level=level):
            fresh = np.isinf(labels[dst])
            labels[dst[fresh]] = level
            return fresh

        frontier, _ = ops.advance(frontier, functor)
        # Gunrock's pipelines end each iteration with a filter pass
        # (dedup/validity); ours validates levels.
        frontier = ops.filter(frontier, lambda f: labels[f] == level)
    return labels, ops.launches


def gunrock_sssp(
    graph: CSRGraph, source: int, *, simulator: Optional[GPUSimulator] = None
) -> Tuple[np.ndarray, int]:
    """SSSP as advance (relax) + filter (near-far style compaction)."""
    if graph.weights is None:
        raise EngineError("gunrock_sssp requires edge weights")
    ops = Operators(graph, simulator)
    weights = graph.weights
    dist = np.full(graph.num_nodes, np.inf)
    dist[source] = 0.0
    frontier = np.asarray([source], dtype=NODE_DTYPE)
    while len(frontier):
        improved = np.zeros(graph.num_nodes, dtype=bool)

        def functor(src, dst, slots):
            candidates = dist[src] + weights[slots]
            # emulate atomicMin + mark improvement
            before = dist[dst].copy()
            np.minimum.at(dist, dst, candidates)
            better = dist[dst] < before
            improved[dst[better]] = True
            return better

        frontier, _ = ops.advance(frontier, functor)
        frontier = ops.filter(frontier, lambda f: improved[f])
    return dist, ops.launches


def gunrock_cc(
    graph: CSRGraph, *, simulator: Optional[GPUSimulator] = None
) -> Tuple[np.ndarray, int]:
    """CC as repeated full-frontier advance of min labels."""
    ops = Operators(graph, simulator)
    labels = np.arange(graph.num_nodes, dtype=np.float64)
    frontier = np.arange(graph.num_nodes, dtype=NODE_DTYPE)
    while len(frontier):
        improved = np.zeros(graph.num_nodes, dtype=bool)

        def functor(src, dst, slots):
            before = labels[dst].copy()
            np.minimum.at(labels, dst, labels[src])
            better = labels[dst] < before
            improved[dst[better]] = True
            return better

        frontier, _ = ops.advance(frontier, functor)
        frontier = ops.filter(frontier, lambda f: improved[f])
    return labels, ops.launches
