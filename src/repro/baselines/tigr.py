"""Tigr methods: physical UDT and virtual (± coalescing) scheduling."""

from __future__ import annotations

import time
from typing import Optional

from repro.baselines._run import run_algorithm
from repro.baselines.base import Method, MethodResult
from repro.baselines.memory import baseline_bytes, tigr_virtual_bytes
from repro.core.udt import udt_transform
from repro.core.virtual import virtual_transform
from repro.core.weights import DumbWeight
from repro.engine.push import EngineOptions
from repro.engine.schedule import NodeScheduler, VirtualScheduler
from repro.gpu.config import GPUConfig, KernelProfile
from repro.gpu.simulator import GPUSimulator
from repro.graph.csr import CSRGraph


class TigrUDTMethod(Method):
    """``Tigr-UDT``: physically transform with Algorithm 1, then run
    the baseline engine on the transformed graph.

    Correct for the path/connectivity analytics via dumb weights
    (Corollaries 1–3).  PR and BC are not supported on physically
    transformed graphs: PR's push step would divide by the transformed
    outdegree, and level-synchronous BC cannot traverse 0-weight tree
    edges — the paper evaluates Tigr-UDT on SSSP only (Figure 13).
    """

    name = "tigr-udt"

    def __init__(self, degree_bound: int = 64) -> None:
        self.degree_bound = int(degree_bound)
        self.profile = KernelProfile(name=self.name)

    def supports(self, algorithm: str) -> bool:
        return algorithm in ("bfs", "sssp", "sswp", "cc")

    def footprint(self, graph: CSRGraph, algorithm: str) -> int:
        # The transformed graph is marginally larger (Table 5); the
        # worst observed growth at practical K is ~1.4%.
        return int(baseline_bytes(graph, algorithm) * 1.02)

    def _execute(
        self, graph: CSRGraph, algorithm: str, source: Optional[int], config: GPUConfig
    ) -> MethodResult:
        start = time.perf_counter()
        transformed = udt_transform(
            graph, self.degree_bound,
            dumb_weight=DumbWeight.for_algorithm(algorithm),
        )
        transform_seconds = time.perf_counter() - start

        simulator = GPUSimulator(config, self.profile)
        values, metrics, _ = run_algorithm(
            NodeScheduler(transformed.graph), algorithm, source,
            EngineOptions(worklist=True), simulator,
        )
        return MethodResult(
            method=self.name, algorithm=algorithm,
            values=transformed.read_values(values),
            time_ms=metrics.total_time_ms, metrics=metrics,
            transform_seconds=transform_seconds,
        )


class TigrVirtualMethod(Method):
    """``Tigr-V`` / ``Tigr-V+``: virtual node array scheduling.

    ``coalesced=True`` selects the edge-array-coalesced layout of
    Figure 12 (Tigr-V+, Algorithm 3).  Values stay per physical node
    — implicit value synchronization — so every analytic is supported
    and iteration counts match the untransformed graph (Theorem 2).
    """

    def __init__(self, degree_bound: int = 10, *, coalesced: bool = True) -> None:
        self.degree_bound = int(degree_bound)
        self.coalesced = bool(coalesced)
        self.name = "tigr-v+" if coalesced else "tigr-v"
        self.profile = KernelProfile(name=self.name)

    def supports(self, algorithm: str) -> bool:
        return algorithm in ("bfs", "sssp", "sswp", "cc", "bc", "pr")

    def footprint(self, graph: CSRGraph, algorithm: str) -> int:
        return tigr_virtual_bytes(graph, algorithm, self.degree_bound)

    def _execute(
        self, graph: CSRGraph, algorithm: str, source: Optional[int], config: GPUConfig
    ) -> MethodResult:
        start = time.perf_counter()
        virtual = virtual_transform(graph, self.degree_bound, coalesced=self.coalesced)
        transform_seconds = time.perf_counter() - start

        simulator = GPUSimulator(config, self.profile)
        values, metrics, _ = run_algorithm(
            VirtualScheduler(virtual), algorithm, source,
            EngineOptions(worklist=True), simulator,
        )
        return MethodResult(
            method=self.name, algorithm=algorithm, values=values,
            time_ms=metrics.total_time_ms, metrics=metrics,
            transform_seconds=transform_seconds,
        )
