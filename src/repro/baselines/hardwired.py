"""Method wrappers for the hardwired primitives (project-website bench).

Each wraps one :mod:`repro.algorithms.hardwired` primitive as a
:class:`~repro.baselines.base.Method` so the harness can drop them
into the same comparison tables as the general frameworks.  Their cost
profiles reflect hand-tuned kernels: lean per-thread setup, scan-based
coalesced layouts, single-kernel iterations.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.hardwired import (
    delta_stepping_sssp,
    direction_optimizing_bfs,
    gas_pagerank,
    pointer_jumping_cc,
)
from repro.baselines.base import Method, MethodResult
from repro.baselines.memory import csr_bytes
from repro.gpu.config import GPUConfig, KernelProfile
from repro.gpu.simulator import GPUSimulator
from repro.graph.csr import CSRGraph

#: lean hand-tuned kernel profile shared by the hardwired methods.
_HARDWIRED_PROFILE = KernelProfile(
    name="hardwired",
    cycles_per_step=5.0,
    cycles_per_thread=3.0,
    instructions_per_edge=8.0,
    instructions_per_thread=5.0,
)


class _HardwiredBase(Method):
    """Common plumbing: one primitive, one algorithm."""

    algorithm: str = ""

    def supports(self, algorithm: str) -> bool:
        return algorithm == self.algorithm

    def footprint(self, graph: CSRGraph, algorithm: str) -> int:
        # CSR (+ reverse CSR when the primitive gathers) + values.
        total = csr_bytes(graph) + 2 * graph.num_nodes * 8
        if self.uses_reverse_graph:
            total += csr_bytes(graph)
        return total

    #: whether the primitive materialises the reverse CSR.
    uses_reverse_graph = False


class DirectionOptimizingBFSMethod(_HardwiredBase):
    """Merrill/Beamer-class BFS (push/pull switching)."""

    name = "do-bfs"
    algorithm = "bfs"
    uses_reverse_graph = True

    def _execute(self, graph, algorithm, source, config: GPUConfig) -> MethodResult:
        simulator = GPUSimulator(config, _HARDWIRED_PROFILE)
        result = direction_optimizing_bfs(graph, source, simulator=simulator)
        return MethodResult(
            method=self.name, algorithm=algorithm, values=result.values,
            time_ms=result.metrics.total_time_ms, metrics=result.metrics,
            notes={"bottom_up_levels": float(result.notes["bottom_up_levels"])},
        )


class DeltaSteppingSSSPMethod(_HardwiredBase):
    """Davidson et al.-class SSSP (Δ-stepping buckets)."""

    name = "delta-sssp"
    algorithm = "sssp"

    def __init__(self, delta: Optional[float] = None) -> None:
        self.delta = delta

    def _execute(self, graph, algorithm, source, config: GPUConfig) -> MethodResult:
        simulator = GPUSimulator(config, _HARDWIRED_PROFILE)
        result = delta_stepping_sssp(graph, source, delta=self.delta,
                                     simulator=simulator)
        return MethodResult(
            method=self.name, algorithm=algorithm, values=result.values,
            time_ms=result.metrics.total_time_ms, metrics=result.metrics,
            notes={"delta": float(result.notes["delta"])},
        )


class PointerJumpingCCMethod(_HardwiredBase):
    """ECL-CC-class connected components (hook + pointer jump)."""

    name = "ecl-cc"
    algorithm = "cc"

    def _execute(self, graph, algorithm, source, config: GPUConfig) -> MethodResult:
        simulator = GPUSimulator(config, _HARDWIRED_PROFILE)
        result = pointer_jumping_cc(graph, simulator=simulator)
        return MethodResult(
            method=self.name, algorithm=algorithm, values=result.values,
            time_ms=result.metrics.total_time_ms, metrics=result.metrics,
        )


class GASPageRankMethod(_HardwiredBase):
    """Elsen & Vaidyanathan-class PR (gather-apply-scatter)."""

    name = "gas-pr"
    algorithm = "pr"
    uses_reverse_graph = True

    def _execute(self, graph, algorithm, source, config: GPUConfig) -> MethodResult:
        simulator = GPUSimulator(config, _HARDWIRED_PROFILE)
        result = gas_pagerank(graph, simulator=simulator)
        return MethodResult(
            method=self.name, algorithm=algorithm, values=result.values,
            time_ms=result.metrics.total_time_ms, metrics=result.metrics,
        )


def hardwired_methods() -> list:
    """The four project-website comparators."""
    return [
        DirectionOptimizingBFSMethod(),
        DeltaSteppingSSSPMethod(),
        PointerJumpingCCMethod(),
        GASPageRankMethod(),
    ]
