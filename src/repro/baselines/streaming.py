"""Out-of-memory streaming execution (GraphReduce/Graphie-class, §7.2).

Table 4's OOM rows assume a framework simply fails when its working
set exceeds device memory.  The §7.2 systems that "target the GPU
memory constraints" instead *stream*: the edge array is split into
partitions that fit, and every iteration ships the needed partitions
over PCIe before their kernel runs.

:class:`StreamingTigrMethod` wraps the Tigr-V+ engine with that
discipline: when the working set fits, it behaves identically to
:class:`~repro.baselines.tigr.TigrVirtualMethod`; when it does not,
the run completes anyway — at a simulated cost dominated by the
host-device transfers, quantifying exactly what the OOMing frameworks
leave on the table and what it would cost to rescue them.
"""

from __future__ import annotations

import math
import time
from typing import Optional

from repro.baselines._run import run_algorithm
from repro.baselines.base import Method, MethodResult
from repro.baselines.memory import tigr_virtual_bytes
from repro.core.virtual import virtual_transform
from repro.engine.push import EngineOptions
from repro.engine.schedule import VirtualScheduler
from repro.gpu.config import GPUConfig, KernelProfile
from repro.gpu.simulator import GPUSimulator
from repro.graph.csr import CSRGraph

#: sustained host->device copy bandwidth, bytes per ms (PCIe 3.0 x16,
#: same scaling convention as repro.multigpu.InterconnectConfig).
STREAM_BANDWIDTH_BYTES_PER_MS = 1.2e7
#: fixed per-partition copy launch latency (ms, scaled).
STREAM_LATENCY_MS = 0.002


class StreamingTigrMethod(Method):
    """Tigr-V+ with GraphReduce-style partition streaming.

    The footprint check always passes (that is the point); the cost
    model adds, per iteration, the transfer time of every edge
    partition that does not fit resident.
    """

    name = "tigr-stream"

    def __init__(self, degree_bound: int = 10) -> None:
        self.degree_bound = int(degree_bound)
        self.profile = KernelProfile(name=self.name)

    def supports(self, algorithm: str) -> bool:
        return algorithm in ("bfs", "sssp", "sswp", "cc", "bc", "pr")

    def footprint(self, graph: CSRGraph, algorithm: str) -> int:
        """Only the resident slice must fit: value arrays + one
        partition's edges.  Reported as the value arrays (the
        irreducible residency)."""
        return 4 * graph.num_nodes * 8

    def plan_streaming(self, graph: CSRGraph, config: GPUConfig):
        """``(num_partitions, bytes_streamed_per_full_sweep)``.

        The value arrays and virtual node array stay resident; the
        edge array is divided into equal partitions sized to the
        remaining memory.  One full sweep streams every partition once.
        """
        total = tigr_virtual_bytes(graph, "any", self.degree_bound)
        resident = self.footprint(graph, "any")
        edge_bytes = total - resident
        budget = max(config.device_memory_bytes - resident, 1)
        partitions = max(1, math.ceil(edge_bytes / budget))
        if partitions == 1:
            return 1, 0  # fits: nothing streams
        return partitions, edge_bytes

    def _execute(
        self, graph: CSRGraph, algorithm: str, source: Optional[int], config: GPUConfig
    ) -> MethodResult:
        start = time.perf_counter()
        virtual = virtual_transform(graph, self.degree_bound, coalesced=True)
        transform_seconds = time.perf_counter() - start

        simulator = GPUSimulator(config, self.profile)
        values, metrics, iterations = run_algorithm(
            VirtualScheduler(virtual), algorithm, source,
            EngineOptions(worklist=True), simulator,
        )
        partitions, sweep_bytes = self.plan_streaming(graph, config)
        # Frontier iterations touch a subset of partitions; charge
        # proportionally to the fraction of edges actually processed.
        total_edges = max(graph.num_edges, 1)
        streamed_bytes = 0.0
        stream_ms = 0.0
        if partitions > 1:
            for it in metrics.iterations:
                fraction = min(1.0, it.edges_processed / total_edges)
                touched = max(1, math.ceil(fraction * partitions))
                it_bytes = sweep_bytes * touched / partitions
                streamed_bytes += it_bytes
                stream_ms += (
                    STREAM_LATENCY_MS * touched
                    + it_bytes / STREAM_BANDWIDTH_BYTES_PER_MS
                )
        return MethodResult(
            method=self.name, algorithm=algorithm, values=values,
            time_ms=metrics.total_time_ms + stream_ms, metrics=metrics,
            transform_seconds=transform_seconds,
            notes={
                "partitions": float(partitions),
                "stream_ms": stream_ms,
                "streamed_bytes": streamed_bytes,
            },
        )
