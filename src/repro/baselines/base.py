"""Method interface and shared algorithm plumbing for the evaluation."""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import EngineError
from repro.gpu.config import GPUConfig
from repro.gpu.metrics import RunMetrics
from repro.graph.builder import to_undirected
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class AlgorithmSpec:
    """How one of the six analytics consumes its input graph."""

    name: str
    #: whether the run needs edge weights.
    weighted: bool
    #: whether a source node is required.
    needs_source: bool
    #: whether the graph is symmetrised first (CC convention).
    symmetrize: bool = False


#: The six analytics of §6.1, keyed by canonical name.
ALGORITHMS: Dict[str, AlgorithmSpec] = {
    "bfs": AlgorithmSpec("bfs", weighted=False, needs_source=True),
    "sssp": AlgorithmSpec("sssp", weighted=True, needs_source=True),
    "sswp": AlgorithmSpec("sswp", weighted=True, needs_source=True),
    "cc": AlgorithmSpec("cc", weighted=False, needs_source=False, symmetrize=True),
    "bc": AlgorithmSpec("bc", weighted=False, needs_source=True),
    "pr": AlgorithmSpec("pr", weighted=False, needs_source=False),
}


def prepare_graph(graph: CSRGraph, algorithm: str) -> CSRGraph:
    """Shape the input graph the way every method consumes it.

    BFS/CC/BC/PR run unweighted; CC runs on the symmetrised graph
    (weakly connected components); SSSP/SSWP require weights.  Doing
    this once, identically for all methods, keeps Table 4 cells
    comparable.
    """
    spec = ALGORITHMS.get(algorithm)
    if spec is None:
        raise EngineError(f"unknown algorithm {algorithm!r}; known: {sorted(ALGORITHMS)}")
    g = graph
    if spec.symmetrize:
        g = to_undirected(g)
    if spec.weighted:
        if g.weights is None:
            raise EngineError(f"{algorithm} requires a weighted graph")
    else:
        g = g.without_weights()
    return g


@dataclass
class MethodResult:
    """Outcome of running one method on one (algorithm, dataset) cell."""

    method: str
    algorithm: str
    #: values over the *original* node ids (projected back for
    #: physical transforms); None when the run OOMed.
    values: Optional[np.ndarray]
    #: simulated kernel time (the Table 4 number).
    time_ms: float
    metrics: Optional[RunMetrics]
    #: True when the simulated device could not fit the working set.
    oom: bool = False
    #: host-side preprocessing wall-clock (transform construction).
    transform_seconds: float = 0.0
    #: modelled device footprint in bytes.
    footprint_bytes: int = 0
    notes: Dict[str, float] = field(default_factory=dict)

    @property
    def display_time(self) -> str:
        """Table 4 cell text: a time or ``OOM``."""
        return "OOM" if self.oom else f"{self.time_ms:.3f}"


class Method(ABC):
    """One row of Table 2: a framework model.

    Subclasses implement :meth:`_execute`; the public :meth:`run`
    handles graph preparation, the memory check, and OOM reporting.
    """

    #: short name used in tables (``"Tigr-V+"`` etc.).
    name: str = "method"

    @abstractmethod
    def supports(self, algorithm: str) -> bool:
        """Whether the framework ships this graph primitive.

        The paper's Table 4 has missing cells for exactly this reason
        (MW and CuSha lack BC; Gunrock lacks SSWP).
        """

    @abstractmethod
    def footprint(self, graph: CSRGraph, algorithm: str) -> int:
        """Modelled device memory footprint in bytes."""

    @abstractmethod
    def _execute(
        self,
        graph: CSRGraph,
        algorithm: str,
        source: Optional[int],
        config: GPUConfig,
    ) -> MethodResult:
        """Run semantics + cost simulation on a prepared graph."""

    def run(
        self,
        graph: CSRGraph,
        algorithm: str,
        source: Optional[int] = None,
        *,
        config: Optional[GPUConfig] = None,
    ) -> MethodResult:
        """Run one Table 4 cell.

        ``graph`` is the raw (weighted) dataset; preparation per
        :func:`prepare_graph` happens here.  Returns an OOM result
        instead of raising when the footprint exceeds device memory.
        """
        spec = ALGORITHMS.get(algorithm)
        if spec is None:
            raise EngineError(
                f"unknown algorithm {algorithm!r}; known: {sorted(ALGORITHMS)}"
            )
        if not self.supports(algorithm):
            raise EngineError(f"{self.name} does not implement {algorithm}")
        if spec.needs_source and source is None:
            raise EngineError(f"{algorithm} requires a source node")
        config = config or GPUConfig()
        prepared = prepare_graph(graph, algorithm)
        required = self.footprint(prepared, algorithm)
        if required > config.device_memory_bytes:
            return MethodResult(
                method=self.name, algorithm=algorithm, values=None,
                time_ms=float("inf"), metrics=None, oom=True,
                footprint_bytes=required,
            )
        start = time.perf_counter()
        result = self._execute(prepared, algorithm, source, config)
        result.notes.setdefault("host_seconds", time.perf_counter() - start)
        result.footprint_bytes = required
        return result
