"""Internal: dispatch an algorithm name onto a scheduler/target."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.algorithms import bc, bfs, connected_components, pagerank, sssp, sswp
from repro.engine.push import EngineOptions
from repro.errors import EngineError
from repro.gpu.metrics import RunMetrics
from repro.gpu.simulator import GPUSimulator


def run_algorithm(
    target,
    algorithm: str,
    source: Optional[int],
    options: EngineOptions,
    simulator: Optional[GPUSimulator],
) -> Tuple[np.ndarray, Optional[RunMetrics], int]:
    """Run one analytic on any engine target.

    Returns ``(values, metrics, iterations)``.  ``values`` are the
    analytic's canonical output: distances, widths, labels, BC scores,
    or PageRank scores.
    """
    if algorithm == "bfs":
        r = bfs(target, source, options=options, simulator=simulator)
    elif algorithm == "sssp":
        r = sssp(target, source, options=options, simulator=simulator)
    elif algorithm == "sswp":
        r = sswp(target, source, options=options, simulator=simulator)
    elif algorithm == "cc":
        r = connected_components(target, options=options, simulator=simulator)
    elif algorithm == "pr":
        r = pagerank(target, options=options, simulator=simulator)
    elif algorithm == "bc":
        result = bc(target, source, options=options, simulator=simulator)
        return result.centrality, result.metrics, result.num_iterations
    else:
        raise EngineError(f"unknown algorithm {algorithm!r}")
    return r.values, r.metrics, r.num_iterations
