"""Maximum Warp [23] — sub-warp decomposition, modelled faithfully.

MW splits each 32-lane warp into virtual warps of ``w`` lanes and
gives each node ``w`` lanes to process its edges in parallel.  No
single ``w`` fits a power-law graph: small ``w`` leaves hub nodes with
thousands of sequential steps, large ``w`` wastes lanes on the
low-degree majority — the tension Tigr's splitting removes.  Following
the paper's methodology ("for MW with varying virtual warp sizes, the
best performance is chosen"), :class:`MaxWarpMethod` costs every
``w`` in {2,4,8,16,32} and reports the fastest.

The MW harness (from the CuSha repository) processes every node each
iteration — no worklist — so each iteration's launch is identical and
is costed once then replayed.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.baselines._run import run_algorithm
from repro.baselines.base import Method, MethodResult
from repro.baselines.memory import maxwarp_bytes
from repro.engine.push import EngineOptions
from repro.engine.schedule import MaxWarpScheduler, NodeScheduler
from repro.gpu.config import GPUConfig, KernelProfile
from repro.gpu.simulator import GPUSimulator
from repro.graph.csr import CSRGraph

#: virtual warp sizes evaluated, as in [23].
VIRTUAL_WARP_SIZES: Tuple[int, ...] = (2, 4, 8, 16, 32)


class MaxWarpMethod(Method):
    """Best-of-``w`` virtual warp execution, all nodes every iteration."""

    name = "mw"

    def __init__(self) -> None:
        self.profile = KernelProfile(name=self.name)

    def supports(self, algorithm: str) -> bool:
        # the MW implementation used in the paper lacks BC (Table 4).
        return algorithm in ("bfs", "sssp", "sswp", "cc", "pr")

    def footprint(self, graph: CSRGraph, algorithm: str) -> int:
        return maxwarp_bytes(graph, algorithm)

    def _execute(
        self, graph: CSRGraph, algorithm: str, source: Optional[int], config: GPUConfig
    ) -> MethodResult:
        # Semantics once (results and iteration count are independent
        # of w — MW only changes the thread execution model).
        values, _, iterations = run_algorithm(
            NodeScheduler(graph), algorithm, source,
            EngineOptions(worklist=False), None,
        )

        best_metrics = None
        best_w = None
        all_nodes = None
        for w in VIRTUAL_WARP_SIZES:
            scheduler = MaxWarpScheduler(graph, w)
            if all_nodes is None:
                all_nodes = scheduler.all_nodes()
            trace = scheduler.batch(all_nodes).trace()
            simulator = GPUSimulator(config, self.profile)
            simulator.record_uniform_iterations(trace, iterations)
            metrics = simulator.finish()
            if best_metrics is None or metrics.total_time_ms < best_metrics.total_time_ms:
                best_metrics, best_w = metrics, w

        return MethodResult(
            method=self.name, algorithm=algorithm, values=values,
            time_ms=best_metrics.total_time_ms, metrics=best_metrics,
            notes={"virtual_warp_size": float(best_w)},
        )
