"""Device-memory footprint models behind Table 4's OOM entries.

Each function estimates, from first principles, the bytes a framework
keeps resident on the device for one run.  The constants encode each
system's documented representation:

* the **CSR family** (baseline, Tigr, MW) stores offsets + targets
  (+ weights), a value array, and a worklist;
* **Tigr-V/V+** adds the virtual node array: two words per virtual
  node (Figure 10);
* **CuSha** converts the graph into G-Shards, replicating per-edge
  records (source index, destination index, source-value slot, and
  weight when present) *while the input CSR is still resident*, plus
  per-node window/offset bookkeeping across shards — the
  representation the paper identifies as the OOM culprit on
  ``sinaweibo``/``twitter``;
* **Gunrock** keeps CSR plus double-buffered edge frontiers; its
  direction-optimised BFS additionally materialises the reverse CSR,
  which is what pushes BFS-on-``sinaweibo`` over the limit in
  Table 4 while its SSSP run survives.

All words are 8 bytes, matching the rest of the library (the device
budget in :class:`repro.gpu.GPUConfig` is scaled accordingly).
"""

from __future__ import annotations

from repro.graph.csr import CSRGraph

WORD = 8


def csr_bytes(graph: CSRGraph) -> int:
    """Plain CSR: offsets + targets (+ weights)."""
    words = (graph.num_nodes + 1) + graph.num_edges
    if graph.is_weighted:
        words += graph.num_edges
    return words * WORD


def _values_and_worklist(graph: CSRGraph) -> int:
    # value array + double-buffered node worklist
    return 3 * graph.num_nodes * WORD


def baseline_bytes(graph: CSRGraph, algorithm: str) -> int:
    """Baseline engine and Tigr-UDT (on its transformed graph)."""
    return csr_bytes(graph) + _values_and_worklist(graph)


def tigr_virtual_bytes(graph: CSRGraph, algorithm: str, degree_bound: int) -> int:
    """Tigr-V / Tigr-V+: CSR + virtual node array + values/worklist."""
    degrees = graph.out_degrees()
    virtual_nodes = int(((degrees + degree_bound - 1) // degree_bound).sum())
    return csr_bytes(graph) + 2 * virtual_nodes * WORD + _values_and_worklist(graph)


def maxwarp_bytes(graph: CSRGraph, algorithm: str) -> int:
    """MW modifies thread execution only: CSR + values, no worklist."""
    return csr_bytes(graph) + 2 * graph.num_nodes * WORD


def cusha_bytes(graph: CSRGraph, algorithm: str) -> int:
    """CuSha G-Shards / Concatenated Windows.

    Shard entries: (src idx, dst idx, src-value slot) and the weight
    when weighted — 3–4 words per edge — coexisting with the input
    CSR during conversion; plus ~20 words per node of window offsets,
    shard boundaries and double-buffered values.
    """
    entry_words = 4 if graph.is_weighted else 3
    shard = graph.num_edges * entry_words * WORD
    windows = graph.num_nodes * 20 * WORD
    values = 2 * graph.num_nodes * WORD
    return shard + csr_bytes(graph) + windows + values


def gunrock_bytes(graph: CSRGraph, algorithm: str) -> int:
    """Gunrock: CSR + frontier queues (+ reverse CSR for BFS).

    Direction-optimised BFS materialises the reverse CSR *and*
    double-buffers generously sized (1.5×|E|) edge frontiers; the
    other primitives keep a single edge frontier plus a node frontier.
    """
    total = csr_bytes(graph) + 2 * graph.num_nodes * WORD
    if algorithm == "bfs":
        total += csr_bytes(graph)  # reverse CSR for pull phases
        total += int(2 * 1.5 * graph.num_edges) * WORD
    else:
        total += graph.num_edges * WORD + graph.num_nodes * WORD
    return total


def footprint_bytes(method: str, graph: CSRGraph, algorithm: str, **kwargs) -> int:
    """Dispatch by method name (used by reports and tests)."""
    key = method.lower()
    if key in ("baseline", "tigr-udt"):
        return baseline_bytes(graph, algorithm)
    if key in ("tigr-v", "tigr-v+"):
        return tigr_virtual_bytes(graph, algorithm, kwargs.get("degree_bound", 10))
    if key == "mw":
        return maxwarp_bytes(graph, algorithm)
    if key == "cusha":
        return cusha_bytes(graph, algorithm)
    if key == "gunrock":
        return gunrock_bytes(graph, algorithm)
    raise KeyError(f"unknown method {method!r}")
