"""Cache economics: prewarm must collapse cold starts, GDSF must pay.

Acceptance bars for :mod:`repro.service.economics`:

* pre-warming from the mined ``bfs-heavy`` forecast cuts the golden
  trace's cold-start p95 to at most half of the un-prewarmed replay;
* every (policy × backend) prewarmed replay reproduces the recorded
  digests bit-for-bit — eviction economics never change answers;
* GDSF beats LRU on the mixed build-cost workload it was built for.
  The uniform-recency duel is reported but *not* asserted in GDSF's
  favour: that workload is LRU's home turf, and the honest rows are
  the documentation for when LRU remains the right default.
"""

import os

from repro.bench import cache_policy
from repro.bench.export import save_report

RESULTS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "results")


def test_cache_policy(run_once, bench_scale):
    report = run_once(cache_policy, scale=bench_scale)
    print()
    print(report.to_text())
    save_report(report, os.path.join(RESULTS_DIR, "cache-policy.json"))

    # prewarmed cold-start p95 collapses to <= 0.5x the cold replay
    assert report.extras["prewarm_p95_ratio"] <= 0.5
    by_phase = {}
    for row in report.rows:
        by_phase.setdefault(row["phase"], []).append(row)
    prewarmed = by_phase["prewarmed"][0]
    assert prewarmed["hit_rate"] == 1.0
    assert prewarmed["prewarm_built"] > 0
    assert prewarmed["prewarm_hits"] > 0

    # digest parity across every (policy x backend) pair
    assert report.extras["parity_clean"] is True
    for row in by_phase["parity"]:
        assert row["digests_ok"] is True
        assert row["digests_matched"] == row["digests_checked"] > 0

    # GDSF wins the mixed build-cost duel outright...
    assert report.extras["gdsf_mixed_rebuild_ratio"] < 0.8
    # ...and is allowed to lose uniform-recency, within reason
    assert report.extras["gdsf_recency_rebuild_ratio"] < 3.0
