"""Table 3 — datasets in evaluation (synthetic stand-ins).

Regenerates the dataset-statistics table: node/edge counts, maximum
outdegree, estimated diameter, and the degree bounds used downstream.
"""

from repro.bench import table3_datasets


def test_table3(run_once, bench_scale):
    report = run_once(table3_datasets, scale=bench_scale)
    print()
    print(report.to_text())
    assert len(report.rows) == 6
    by_name = {r["dataset"]: r for r in report.rows}
    # Expected shape: relative size ordering of the paper's Table 3.
    assert by_name["pokec"]["edges"] < by_name["livejournal"]["edges"]
    assert by_name["livejournal"]["edges"] < by_name["orkut"]["edges"]
    assert by_name["orkut"]["edges"] < by_name["sinaweibo"]["edges"]
    # Small diameters, like the originals (5-15).
    for row in report.rows:
        assert row["diameter"] <= 20
    # d_max skew: hubs orders of magnitude above the mean.
    for row in report.rows:
        assert row["d_max"] > 10 * row["edges"] / row["nodes"]
