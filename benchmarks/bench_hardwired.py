"""The "project website" comparison: Tigr-V+ vs hardwired primitives.

See repro.bench.hardwired for the framing.  Expected shape: Tigr-V+
is competitive with (same order of magnitude as) each hand-tuned
primitive on its own specialty, and ECL-CC beats every general
framework on CC — the one concession Gunrock's comparison (which the
paper leans on) makes, reproduced here structurally by pointer
jumping's O(log n) rounds.
"""

from repro.bench.hardwired import hardwired_comparison


def test_hardwired_comparison(run_once, bench_scale):
    report = run_once(hardwired_comparison, scale=bench_scale)
    print()
    print(report.to_text())

    def ratios(algorithm):
        return [r["tigr_over_hardwired"] for r in report.rows
                if r["algorithm"] == algorithm]

    # ECL-CC's O(log n) rounds beat the general framework on most
    # datasets (Gunrock's comparison concedes exactly this case).
    cc = ratios("cc")
    assert sum(1 for x in cc if x > 1.0) >= len(cc) - 1

    # Direction-optimizing BFS always wins: Tigr fixes load balance
    # but still expands every frontier edge top-down, while bottom-up
    # levels exit after the first discovered parent.
    assert all(x > 1.0 for x in ratios("bfs"))

    # GAS PageRank and Tigr push-PR do the same all-active edge work;
    # the hand-tuned kernel wins only its constant factors.
    assert all(1.0 < x < 1.5 for x in ratios("pr"))

    # Delta-stepping's bucket discipline wins moderately on SSSP.
    assert all(1.0 < x < 3.0 for x in ratios("sssp"))

    # Nothing is out of scale in either direction.
    for row in report.rows:
        assert 0.3 < row["tigr_over_hardwired"] < 15.0, row
