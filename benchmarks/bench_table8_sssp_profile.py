"""Table 8 — SSSP performance details (LiveJournal, K=8).

The paper's deep-dive: with and without the worklist, for the
original / physically transformed / virtually transformed graph —
iteration counts, per-iteration time, instruction counts and warp
efficiency.  Expected shape (paper values in parentheses):

* physical needs ~2x the iterations (14 -> 29); virtual needs none;
* both transformations raise warp efficiency several-fold
  (26% -> 91-93%);
* both execute more instructions than the original (extra nodes /
  threads), with physical > virtual;
* the worklist cuts instruction counts dramatically (3.3e9 -> 9e8).
"""

from repro.bench import table8_sssp_profile


def test_table8(run_once, bench_scale):
    report = run_once(table8_sssp_profile, scale=bench_scale)
    print()
    print(report.to_text())
    rows = {(r["variant"], r["worklist"]): r for r in report.rows}

    for worklist in ("without", "with"):
        orig = rows[("original", worklist)]
        phys = rows[("physical", worklist)]
        virt = rows[("virtual", worklist)]
        # iterations: physical ~2x, virtual unchanged
        assert 1.5 <= phys["iterations"] / orig["iterations"] <= 3.5
        assert virt["iterations"] == orig["iterations"]
        # warp efficiency multiplies under both transformations
        eff = lambda r: float(r["warp_efficiency"].rstrip("%"))
        assert eff(phys) > 3 * eff(orig)
        assert eff(virt) > 3 * eff(orig)
        # instruction counts: physical > virtual > original
        assert phys["instructions"] > virt["instructions"] > orig["instructions"]

    # the worklist slashes instructions on the original graph
    assert rows[("original", "with")]["instructions"] < 0.5 * rows[("original", "without")]["instructions"]
    # per-iteration time drops under both transformations (no worklist)
    assert rows[("physical", "without")]["time_per_iter_ms"] < rows[("original", "without")]["time_per_iter_ms"]
    assert rows[("virtual", "without")]["time_per_iter_ms"] < rows[("original", "without")]["time_per_iter_ms"]
