"""Scaling sweeps: Tigr's benefit as a function of input irregularity.

* skew sweep — speedup should grow with the degree tail and vanish on
  a regular graph (Figure 1's narrative, quantified);
* reordering comparison — classical node orderings cannot substitute
  for the transformation: hubs still serialise their warps.
"""

from repro.bench.sweeps import reordering_comparison, skew_sweep


def test_skew_sweep(run_once):
    report = run_once(skew_sweep)
    print()
    print(report.to_text())
    rows = report.rows
    powerlaw = [r for r in rows if r["graph"].startswith("dmax=")]
    # speedup grows with skew...
    speedups = [r["speedup"] for r in powerlaw]
    assert all(b > a * 0.95 for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] > 3.0
    # ...and vanishes on the zero-irregularity control.
    ring = next(r for r in rows if r["graph"] == "regular ring")
    assert 0.95 < ring["speedup"] < 1.05
    # baseline warp efficiency collapses with skew; Tigr's does not.
    assert powerlaw[-1]["base_warp_eff"] < 0.15
    assert powerlaw[-1]["tigr_warp_eff"] > 0.4


def test_reordering_comparison(run_once, bench_scale):
    report = run_once(reordering_comparison, scale=bench_scale)
    print()
    print(report.to_text())
    by_config = {r["config"]: r for r in report.rows}

    # Degree sorting does raise warp efficiency (homogeneous warps)...
    assert by_config["degree-sorted"]["warp_efficiency"] > \
        2 * by_config["original ids"]["warp_efficiency"]
    # ...but no ordering rescues the baseline: the hub warps it
    # concentrates still dominate the critical path, so Tigr-V+ beats
    # every baseline-scheduled variant.
    tigr = by_config["tigr-v+ (original)"]["time_ms"]
    for label in ("original ids", "degree-sorted", "bfs-ordered"):
        assert tigr < by_config[label]["time_ms"], label
    # The techniques compose: Tigr on the sorted graph is at least as
    # warp-efficient and no slower (±10%).
    combined = by_config["tigr-v+ (degree-sorted)"]
    assert combined["warp_efficiency"] >= by_config["tigr-v+ (original)"]["warp_efficiency"]
    assert combined["time_ms"] < 1.1 * tigr
