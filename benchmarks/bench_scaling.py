"""Size-scaling: transformation-time linearity (§6.4) and persistent
speedups across graph sizes."""

from repro.bench.scaling import speedup_scaling, transform_scaling


def test_transform_time_linear(run_once):
    report = run_once(transform_scaling)
    print()
    print(report.to_text())
    # "the transformation time is proportional to the size of the
    # graph": log-log slope within a sane band around 1 for both.
    assert 0.6 < report.extras["physical_slope"] < 1.5
    assert 0.5 < report.extras["virtual_slope"] < 1.6
    # physical stays the expensive one at every size
    for row in report.rows:
        assert row["physical_ms"] > row["virtual_ms"]


def test_speedup_persists_across_sizes(run_once):
    report = run_once(speedup_scaling)
    print()
    print(report.to_text())
    for row in report.rows:
        assert row["speedup"] > 1.3, row
