"""Table 5 — space cost of the physical (UDT) transformation.

The paper: at the large K values practical for physical transforms,
the graph grows by at most ~1.4% (K=100) and the overhead vanishes as
K grows (fewer nodes split).
"""

from repro.bench import table5_udt_space


def test_table5(run_once, bench_scale):
    report = run_once(table5_udt_space, scale=bench_scale)
    print()
    print(report.to_text())
    for row in report.rows:
        k100 = float(row["K=100"].rstrip("%"))
        k1000 = float(row["K=1000"].rstrip("%"))
        k10000 = float(row["K=10000"].rstrip("%"))
        # marginal growth, monotonically vanishing in K
        assert 100.0 <= k100 < 115.0, row
        assert k100 >= k1000 >= k10000 >= 100.0, row
