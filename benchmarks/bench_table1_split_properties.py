"""Table 1 — properties of split transformations.

Regenerates every row of Table 1 (clique / circular / star, plus UDT)
by physically transforming single high-degree nodes across a sweep of
degrees and bounds, and checks the measured #new nodes / #new edges /
family degree / max hops against the closed forms.
"""

from repro.bench import table1_split_properties


def test_table1(run_once):
    report = run_once(
        table1_split_properties,
        degrees=(10, 100, 1_000, 10_000, 100_000),
        degree_bounds=(4, 10, 32),
    )
    print()
    print(report.to_text())
    # Expected shape: measurements equal the analytical Table 1 forms.
    assert report.extras["all_match"]
    # T_cliq space cost is quadratic, T_circ/T_star/UDT linear
    # (compare at the largest degree where the clique is materialised):
    cliq = [r for r in report.rows if r["topology"] == "cliq" and r["K"] == 32]
    circ32 = [r for r in report.rows if r["topology"] == "circ" and r["K"] == 32
              and r["d"] == cliq[-1]["d"]]
    assert cliq[-1]["new_edges"] > 100 * circ32[-1]["new_edges"]
    # UDT hop counts stay logarithmic while T_circ's grow linearly:
    udt = [r for r in report.rows if r["topology"] == "udt" and r["K"] == 4]
    circ4 = [r for r in report.rows if r["topology"] == "circ" and r["K"] == 4]
    assert udt[-1]["max_hops"] <= 12
    assert circ4[-1]["max_hops"] >= 10_000
