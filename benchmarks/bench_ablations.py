"""Ablations beyond the paper's tables (DESIGN.md §7).

* virtual K sweep — §5 says tuning K barely matters for Tigr-V;
* physical K sweep — §5 says it matters a lot for UDT;
* worklist x coalescing grid — both engine optimizations compose;
* topology race — Table 1's trade-off run end to end.
"""

from repro.bench.ablations import (
    k_sweep_physical,
    k_sweep_virtual,
    optimization_grid,
    topology_race,
)


def test_k_sweep_virtual(run_once, bench_scale):
    report = run_once(k_sweep_virtual, scale=bench_scale)
    print()
    print(report.to_text())
    # No tuning tension for the virtual transform: iteration counts
    # are K-independent (implicit value sync) and time is monotone in
    # K — "pick a small K" needs no per-dataset search, which is why
    # the paper fixes K = 10 everywhere.
    iters = [r["iterations"] for r in report.rows]
    assert len(set(iters)) == 1
    times = [r["time_ms"] for r in report.rows]
    assert all(a <= b * 1.05 for a, b in zip(times, times[1:]))
    assert report.extras["spread"] < 2.0


def test_k_sweep_physical(run_once, bench_scale):
    report = run_once(k_sweep_physical, scale=bench_scale,
                      degree_bounds=(2, 4, 8, 16, 64, 256))
    print()
    print(report.to_text())
    # "substantial performance variations": a genuine trade-off with
    # an *interior* optimum — too-small K inflates iterations,
    # too-large K restores the imbalance — so the paper must tune K
    # per dataset (the §5 d_max heuristic).
    assert report.extras["spread"] > 1.4
    times = [r["time_ms"] for r in report.rows]
    best = times.index(min(times))
    assert 0 < best < len(times) - 1, "optimum should be interior"
    by_k = {r["K"]: r for r in report.rows}
    assert by_k[2]["iterations"] > 2 * by_k[256]["iterations"]
    assert by_k[2]["warp_efficiency"] > 3 * by_k[256]["warp_efficiency"]


def test_optimization_grid(run_once, bench_scale):
    report = run_once(optimization_grid, scale=bench_scale)
    print()
    print(report.to_text())
    cell = {(r["worklist"], r["coalesced"]): r["time_ms"] for r in report.rows}
    # the worklist helps at either layout; coalescing helps at either
    # worklist setting; the combination is the fastest cell.
    assert cell[(True, False)] < cell[(False, False)]
    assert cell[(True, True)] < cell[(False, True)]
    assert cell[(False, True)] < cell[(False, False)]
    assert cell[(True, True)] == min(cell.values())


def test_topology_race(run_once, bench_scale):
    report = run_once(topology_race, scale=bench_scale)
    print()
    print(report.to_text())
    rows = {r["topology"]: r for r in report.rows}
    # T_circ's hop chains inflate iteration counts beyond every other
    # topology (the Table 1 "slow value propagation" corner).
    assert rows["circ"]["iterations"] > 2 * rows["udt"]["iterations"]
    # T_cliq pays a quadratic edge premium over UDT.
    assert rows["cliq"]["extra_edges"] > 3 * rows["udt"]["extra_edges"]
    # T_star leaves a hub whose degree still exceeds the bound.
    assert rows["star"]["max_degree"] > rows["udt"]["max_degree"]


def test_push_vs_pull(run_once, bench_scale):
    from repro.bench.ablations import push_vs_pull

    report = run_once(push_vs_pull, scale=bench_scale)
    print()
    print(report.to_text())
    by_engine = {r["engine"]: r for r in report.rows}
    # identical iteration counts: direction does not change BSP depth
    iters = {r["iterations"] for r in report.rows}
    assert len(iters) == 1
    # pull's worklist over-approximates (gathers for every influenced
    # node), so it processes at least as many edges as push
    assert by_engine["pull"]["edges_processed"] >= by_engine["push"]["edges_processed"]
    # Tigr is the fastest of the four on a power-law graph
    assert by_engine["tigr-v+ push"]["time_ms"] == min(r["time_ms"] for r in report.rows)
