"""Benchmark configuration.

``REPRO_BENCH_SCALE`` (default 1.0) scales the stand-in datasets for
quicker smoke runs, e.g. ``REPRO_BENCH_SCALE=0.25 pytest benchmarks/``.
Each benchmark runs its experiment exactly once (``pedantic`` with one
round): the experiments are deterministic end-to-end regenerations of
paper tables, not microbenchmarks, and some take tens of seconds at
full scale.
"""

import os

import pytest


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
