"""Lane-parallel multi-source batches must beat the per-source loop.

The acceptance bar for the lane engine: a 16-source hop-count batch
on an R-MAT graph runs at least 2x faster than the same sources
looped one scalar traversal at a time, while producing **bitwise
identical** distance matrices.  Weighted (sssp) lanes are reported
too; their win is pass-count, not wall-clock — numpy cannot fake the
register-level lane vectorisation a GPU gets, so they are gated only
on not collapsing.  The JSON artifact lands in ``results/``.
"""

import os

from repro.bench import multisource_lanes
from repro.bench.export import save_report

RESULTS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "results")


def test_multisource_lanes(run_once, bench_scale):
    report = run_once(multisource_lanes, scale=bench_scale)
    print()
    print(report.to_text())
    save_report(report, os.path.join(RESULTS_DIR, "multisource-lanes.json"))

    # the whole point: same answers, down to the last bit
    assert report.extras["all_bitwise_equal"]
    # the acceptance criterion at full scale; smoke runs on shrunken
    # graphs keep a margin for fixed overheads and runner noise
    floor = 2.0 if bench_scale >= 1.0 else 1.2
    assert report.extras["batch_speedup_16"] >= floor
    # weighted lanes trade wall-clock parity for 16x fewer engine
    # passes; guard against an outright collapse
    assert report.extras["sssp_speedup_16"] >= 0.3

    # mode=auto (the measured cost model's pick) must never lose more
    # than a few percent to the best fixed mode; smoke scales keep a
    # wider margin because fixed overheads magnify timing noise
    ceiling = 1.05 if bench_scale >= 1.0 else 1.5
    assert report.extras["auto_worst_ratio"] <= ceiling
    if bench_scale >= 1.0:
        # on the full-scale bench graph the sssp lane engine's marginal
        # per-lane cost exceeds a whole scalar pass, so the honest pick
        # is the loop at every width — the regression the cost model
        # exists to avoid
        for count in report.column("sources")[:3]:
            assert report.extras[f"sssp_auto_mode_{count}"] == "loop"
