"""Table 7 — transformation time cost (physical vs virtual).

The paper measures 403-16,444 ms for physical UDT vs 20.7-289.7 ms
for virtual transformation (a 10-60x gap), both linear in graph size.
The same ordering and gap appear here: UDT walks every high-degree
node's edge list, while the virtual node array is a vectorised O(|V|)
construction.
"""

from repro.bench import table7_transform_time


def test_table7(run_once, bench_scale):
    report = run_once(table7_transform_time, scale=bench_scale)
    print()
    print(report.to_text())
    # virtual is at least several-fold cheaper on every dataset
    assert report.extras["min_ratio"] > 3.0
    # costs grow with graph size: the largest graphs cost the most
    by_name = {r["dataset"]: r for r in report.rows}
    assert by_name["sinaweibo"]["physical_ms"] > by_name["pokec"]["physical_ms"]
    assert by_name["sinaweibo"]["virtual_ms"] > by_name["pokec"]["virtual_ms"]
