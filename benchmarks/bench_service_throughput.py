"""Serving-layer throughput: warm cache must beat cold single-shot.

The acceptance bar for the serving layer mirrors §6.5's argument for
the transformations themselves: the transform is a one-time cost, so
a query stream that reuses it (warm catalog, batched fan-out) has to
outrun the same stream paying it per query.  The JSON artifact lands
in ``results/`` alongside the regenerated paper tables.
"""

import os

from repro.bench import service_backend_sweep, service_throughput
from repro.bench.export import save_report

RESULTS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "results")


def test_service_throughput(run_once, bench_scale):
    report = run_once(service_throughput, scale=bench_scale)
    print()
    print(report.to_text())
    save_report(report, os.path.join(RESULTS_DIR, "service-throughput.json"))

    by_phase = {row["phase"]: row for row in report.rows}
    # a warm catalog serves every query without transform work...
    assert by_phase["warm-single"]["cache_hit_rate"] > 0.9
    assert by_phase["warm-batched"]["cache_hit_rate"] > 0.9
    # ...and beats cold single-shot on throughput, batched most of all
    assert report.extras["warm_single_speedup"] > 1.0
    assert report.extras["warm_batched_speedup"] > 1.0
    assert (
        by_phase["warm-batched"]["qps"] >= by_phase["cold-single"]["qps"]
    )


def test_service_backend_sweep(run_once, bench_scale):
    report = run_once(service_backend_sweep, scale=bench_scale)
    print()
    print(report.to_text())
    save_report(
        report, os.path.join(RESULTS_DIR, "service-backend-sweep.json")
    )

    cells = {(row["backend"], row["workers"]): row for row in report.rows}
    # both backends serve the whole warm workload from cache
    for row in report.rows:
        assert row["cache_hit_rate"] > 0.9
    # the thread backend never pays IPC; the process backend always does
    for (backend, _workers), row in cells.items():
        if backend == "threads":
            assert row["ipc_mb"] == 0.0
        else:
            assert row["ipc_mb"] > 0.0
    # The headline claim — processes beat threads on a warm
    # multi-client workload at >= 4 workers — needs hardware
    # parallelism to be true: with a single CPU the process backend
    # pays IPC for concurrency the machine cannot deliver.  The
    # recorded extras keep the numbers honest either way.
    if report.extras["cpu_count"] >= 2:
        assert report.extras["processes_vs_threads_x4"] > 1.0
