"""Multi-GPU orthogonality (§7.2): Tigr composes with partitioning.

The paper: "our proposed methods are orthogonal to these existing
techniques" (TOTEM/Medusa-class multi-GPU systems).  Expected shape:
per-device kernel time falls with device count; Tigr's kernel-time
advantage survives at every device count; transfers grow with device
count.  A second experiment repeats the core Figure 13 comparison on
three device generations: the orderings are not artifacts of one
hardware point.
"""

from repro.bench.orthogonality import device_generation_sweep, multigpu_orthogonality


def test_multigpu_orthogonality(run_once, bench_scale):
    report = run_once(multigpu_orthogonality, scale=bench_scale)
    print()
    print(report.to_text())
    rows = {r["devices"]: r for r in report.rows}
    for devices, row in rows.items():
        assert row["tigr_kernel_speedup"] > 1.2, devices
    assert rows[4]["base_kernel_ms"] < rows[1]["base_kernel_ms"]
    assert rows[4]["transfer_bytes"] > rows[2]["transfer_bytes"] > 0
    assert rows[1]["transfer_bytes"] == 0


def test_device_generation_sweep(run_once, bench_scale):
    report = run_once(device_generation_sweep, scale=bench_scale)
    print()
    print(report.to_text())
    for row in report.rows:
        # Tigr wins on every generation, with a real efficiency gap
        assert row["speedup"] > 1.3, row["device"]
        assert row["tigr_warp_eff"] > 2 * row["base_warp_eff"], row["device"]
    # wider devices shrink absolute times
    by_device = {r["device"]: r for r in report.rows}
    assert by_device["a100-class"]["tigr_ms"] < by_device["p4000-class"]["tigr_ms"]
