"""Figure 13 — speedups of Tigr over the baseline engine (SSSP).

Regenerates the per-dataset speedup bars for Tigr-UDT, Tigr-V and
Tigr-V+ over the paper's own lightweight engine with Tigr disabled.
Paper geomeans: 1.2x (UDT), 1.7x (V), 2.1x (V+).  Expected shape:
V+ > V > UDT, all above 1, with V+ gaining ~15-30% over V from
edge-array coalescing.
"""

from repro.bench import figure13_speedups


def test_figure13(run_once, bench_scale):
    report = run_once(figure13_speedups, scale=bench_scale)
    print()
    print(report.to_text())
    udt = report.extras["geomean_tigr-udt"]
    v = report.extras["geomean_tigr-v"]
    vplus = report.extras["geomean_tigr-v+"]
    assert vplus > v > udt > 1.0
    # The coalescing increment (paper: 2.1/1.7 = 1.24x).
    assert 1.05 < vplus / v < 1.5
    # Every dataset individually benefits from the virtual transforms.
    for row in report.rows:
        assert row["tigr-v"] > 1.0, row["dataset"]
        assert row["tigr-v+"] > 1.0, row["dataset"]
