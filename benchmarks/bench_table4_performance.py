"""Table 4 — performance comparison across frameworks.

Regenerates the full method x algorithm x dataset matrix (MW, CuSha,
Gunrock, Tigr-V+) with simulated kernel times and modelled OOMs.
Absolute times are simulator cycles converted to ms; the asserted
reproduction targets are the paper's *shape* claims:

* Tigr-V+ wins most cells, and specifically BFS/SSSP/SSWP/BC
  everywhere;
* CuSha wins PR (pull/scan-friendly, all-active workload);
* CuSha OOMs on sinaweibo; Gunrock OOMs on BFS/sinaweibo; MW and
  Tigr-V+ never OOM.
"""

from repro.bench import table4_performance


def test_table4(run_once, bench_scale):
    report = run_once(table4_performance, scale=bench_scale)
    print()
    print(report.to_text())
    rows = {(r["algorithm"], r["dataset"]): r for r in report.rows}

    # Tigr-V+ wins the majority of cells overall.
    assert report.extras["tigr_v_plus_wins"] >= report.extras["total_cells"] * 0.5

    # Frontier analytics: Tigr-V+ is the best everywhere it runs.
    for algorithm in ("bfs", "sssp", "sswp", "bc"):
        for dataset in ("pokec", "livejournal", "hollywood", "orkut", "twitter", "sinaweibo"):
            assert rows[(algorithm, dataset)]["best"] == "tigr-v+", (algorithm, dataset)

    # PR: CuSha's scan-style processing wins where it fits in memory.
    for dataset in ("pokec", "livejournal", "hollywood", "orkut"):
        assert rows[("pr", dataset)]["best"] == "cusha", dataset

    # OOM pattern.
    for algorithm in ("bfs", "sssp", "pr", "cc", "sswp"):
        assert rows[(algorithm, "sinaweibo")]["cusha"] == "OOM", algorithm
    assert rows[("bfs", "sinaweibo")]["gunrock"] == "OOM"
    assert rows[("sssp", "sinaweibo")]["gunrock"] != "OOM"
    for (algorithm, dataset), row in rows.items():
        assert row["tigr-v+"] != "OOM"
        assert row["mw"] != "OOM"

    # Missing primitives match the paper's blank cells.
    assert all(rows[("sswp", d)]["gunrock"] == "-" for d in ("pokec", "twitter"))
    assert all(rows[("bc", d)]["mw"] == "-" for d in ("pokec", "twitter"))
