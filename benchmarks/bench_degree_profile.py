"""Section 2.3 — the degree-distribution profile motivating Tigr.

"Over 90% of nodes have degrees less than 20 while less than 2% of
nodes have degrees around 1000, up to 14,000."  The social-network
stand-ins are generated to reproduce this regime.
"""

from repro.bench import degree_profile


def test_degree_profile(run_once, bench_scale):
    report = run_once(degree_profile, scale=bench_scale)
    print()
    print(report.to_text())
    by_name = {r["dataset"]: r for r in report.rows}
    for name in ("pokec", "livejournal", "sinaweibo"):
        row = by_name[name]
        assert float(row["frac_below_20"].rstrip("%")) > 85.0, name
        assert float(row["frac_1000_plus"].rstrip("%")) < 2.0, name
    # every dataset is heavy-tailed
    for row in report.rows:
        assert row["cv"] > 1.0, row["dataset"]
