"""JIT kernel backends must beat scalar numpy without changing a bit.

The acceptance bar for the kernel-backend registry: at least one
(algorithm, graph) cell runs at least 2x faster warm under a JIT
backend than under the numpy baseline, every cell is **bitwise
identical** to the baseline, and the backend actually engaged (a
fallback to the numpy path must not masquerade as a JIT timing).
Warm-JIT and compile-included costs are reported separately in the
extras.  The JSON artifact lands in ``results/``.
"""

import os

import pytest

from repro.bench import kernel_backends
from repro.bench.export import save_report
from repro.engine import kernels

RESULTS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "results")


def test_kernel_backends(run_once, bench_scale):
    if not kernels.jit_backends():
        pytest.skip("no JIT kernel backend available on this machine")
    report = run_once(kernel_backends, scale=bench_scale)
    print()
    print(report.to_text())
    save_report(report, os.path.join(RESULTS_DIR, "kernel-backends.json"))

    # the whole point: same answers, down to the last bit
    assert report.extras["all_bitwise_equal"]
    # and the timings must be of the JIT path, not a silent fallback
    assert report.extras["all_jit_engaged"]
    # the acceptance criterion at full scale; smoke runs on shrunken
    # graphs keep a margin for launch overheads and runner noise
    floor = 2.0 if bench_scale >= 1.0 else 1.2
    assert report.extras["best_jit_speedup"] >= floor
