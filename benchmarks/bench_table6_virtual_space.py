"""Table 6 — space cost of the virtual transformation.

The paper: ~146-149% at K=4, ~125% at K=8, decreasing in K — the
virtual node array (2 words per virtual node) added to the CSR.
"""

from repro.bench import table6_virtual_space


def test_table6(run_once, bench_scale):
    report = run_once(table6_virtual_space, scale=bench_scale)
    print()
    print(report.to_text())
    for row in report.rows:
        values = [float(row[f"K={k}"].rstrip("%")) for k in (4, 8, 16, 32, 100)]
        # decreasing in K, all above 100%
        assert all(a >= b for a, b in zip(values, values[1:])), row
        assert all(v > 100.0 for v in values), row
        # the paper's K=4 / K=8 bands
        assert 125.0 < values[0] < 165.0, row
        assert 110.0 < values[1] < 140.0, row
