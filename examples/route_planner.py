"""Route planning: distances are nice, routes are the product.

The paper's engines (like the GPU originals) compute distance arrays.
This example shows the post-processing layer a real application adds
on top — all Tigr-scheduled:

1. SSSP from a depot over a weighted network (virtual transform);
2. reconstruct actual routes from the converged distances;
3. the shortest-path DAG (every tight edge) for alternative routes;
4. an ego network around the depot for a local map extract.

Run:  python examples/route_planner.py
"""

import numpy as np

from repro import rmat, run, tigr
from repro.algorithms.paths import (
    path_length,
    reconstruct_path,
    shortest_path_tree_edges,
)
from repro.graph.subgraph import ego_network, traversal_subgraph


def main() -> None:
    # A weighted delivery network (power-law: a few big interchanges).
    network = rmat(5_000, 60_000, seed=77, weight_range=(1, 30))
    depot = int(np.argmax(network.out_degrees()))
    print(f"network: {network}, depot = node {depot}")

    # 1. distances, Tigr-scheduled
    result = run("sssp", tigr(network), depot)
    dist = result.values
    reached = np.flatnonzero(np.isfinite(dist))
    print(f"SSSP reached {len(reached)} nodes "
          f"in {result.metrics.total_time_ms:.3f} simulated ms")

    # 2. concrete routes to the five farthest reachable stops
    reverse = network.reverse()
    farthest = reached[np.argsort(dist[reached])[-5:]]
    print("\nroutes to the five farthest stops:")
    for stop in farthest:
        route = reconstruct_path(network, dist, depot, int(stop), reverse=reverse)
        cost = path_length(network, route)
        assert cost == dist[stop]
        shown = " -> ".join(map(str, route[:4]))
        if len(route) > 4:
            shown += f" -> ... -> {route[-1]}"
        print(f"  stop {int(stop):5d}: cost {cost:5.0f}, {len(route) - 1} legs: {shown}")

    # 3. the shortest-path DAG: how much of the network is on *some*
    # optimal route
    tight = shortest_path_tree_edges(network, dist)
    print(f"\nshortest-path DAG: {int(tight.sum())} of {network.num_edges} "
          f"edges lie on an optimal route")

    # 4. local map extract around the depot
    local = ego_network(network, depot, radius=2)
    print(f"2-hop service area: {len(local.nodes)} nodes, "
          f"{local.graph.num_edges} edges")

    # bonus: the reached region as a standalone graph
    region, _ = traversal_subgraph(network, dist)
    print(f"reachable region: {len(region.nodes)} nodes "
          f"({len(region.nodes) / network.num_nodes:.0%} of the network)")


if __name__ == "__main__":
    main()
