"""Memory pressure: OOM rows, and what streaming does about them.

Table 4's most dramatic entries are the OOMs: CuSha and Gunrock
cannot even load the largest graphs at the device budget.  This
example reproduces that cliff and then shows the §7.2 alternative —
GraphReduce-style partition streaming wrapped around Tigr-V+ — paying
its way through the same budget.

Run:  python examples/memory_pressure.py
"""

import numpy as np

from repro.baselines import (
    CuShaMethod,
    GunrockMethod,
    StreamingTigrMethod,
    TigrVirtualMethod,
)
from repro.gpu import GPUConfig
from repro.graph import load_dataset


def main() -> None:
    graph = load_dataset("sinaweibo", scale=0.5)
    source = int(np.argmax(graph.out_degrees()))
    print(f"graph: {graph}")

    # A budget chosen so the heavyweight representations spill.
    budget = 4 * 1024 * 1024
    config = GPUConfig(device_memory_bytes=budget)
    print(f"device memory budget: {budget / 1e6:.1f} MB\n")

    print(f"{'method':14s}{'footprint':>12s}{'outcome':>26s}")
    for method in (CuShaMethod(), GunrockMethod(),
                   TigrVirtualMethod(coalesced=True), StreamingTigrMethod()):
        result = method.run(graph, "sssp", source, config=config)
        footprint = method.footprint(graph, "sssp")
        if result.oom:
            outcome = "OOM"
        else:
            outcome = f"{result.time_ms:.3f} ms"
            if result.notes.get("partitions", 1) > 1:
                outcome += (f" ({int(result.notes['partitions'])} partitions, "
                            f"{result.notes['stream_ms']:.3f} ms streaming)")
        print(f"{method.name:14s}{footprint / 1e6:>10.1f}MB{outcome:>34s}")

    print(
        "\nThe streaming wrapper completes with identical results where"
        "\nthe in-memory methods fail - at the price of the host-device"
        "\ntraffic the simulated time now includes."
    )


if __name__ == "__main__":
    main()
