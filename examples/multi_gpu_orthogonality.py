"""Multi-GPU orthogonality: Tigr composes with partitioned processing.

The paper's related work (§7.2) positions multi-GPU systems
(TOTEM, Medusa) as orthogonal to Tigr.  This example partitions a
power-law graph across 1, 2 and 4 simulated devices and runs SSSP
with plain per-device scheduling vs per-device Tigr virtual
scheduling — the transformation keeps paying at every device count,
while the interconnect bill grows with the partition cut.

Run:  python examples/multi_gpu_orthogonality.py
"""

import numpy as np

from repro.algorithms.programs import SSSPProgram
from repro.graph import load_dataset
from repro.multigpu import MultiGPUConfig, run_multi_gpu


def main() -> None:
    graph = load_dataset("orkut", scale=0.5)
    source = int(np.argmax(graph.out_degrees()))
    print(f"graph: {graph}\n")

    header = (f"{'devices':>8s}{'base kernel':>13s}{'tigr kernel':>13s}"
              f"{'tigr gain':>10s}{'transfer':>10s}{'xfer share':>11s}")
    print(header)
    reference = None
    for devices in (1, 2, 4):
        config = MultiGPUConfig(num_devices=devices)
        base = run_multi_gpu(graph, SSSPProgram(), source, config=config)
        tigr = run_multi_gpu(graph, SSSPProgram(), source, config=config,
                             degree_bound=10)
        if reference is None:
            reference = base.values
        assert np.allclose(base.values, reference)
        assert np.allclose(tigr.values, reference)
        print(f"{devices:>8d}{base.kernel_time_ms:>11.3f}ms"
              f"{tigr.kernel_time_ms:>11.3f}ms"
              f"{base.kernel_time_ms / tigr.kernel_time_ms:>9.2f}x"
              f"{tigr.transfer_time_ms:>8.3f}ms"
              f"{tigr.transfer_fraction:>11.1%}")

    print(
        "\nSplitting the graph over devices shrinks each kernel but does"
        "\nnot fix intra-device warp imbalance - Tigr still removes it,"
        "\nat every device count. Orthogonal, as the paper claims."
    )


if __name__ == "__main__":
    main()
