"""Quickstart: transform an irregular graph and run SSSP the Tigr way.

This walks the paper's core loop end to end:

1. generate a power-law graph (the irregular input of Figure 1);
2. overlay a virtual split transformation (§4) with edge-array
   coalescing (§4.4) — no physical rewrite;
3. run SSSP (Algorithm 3) on the original and the virtually
   transformed graph under the simulated GPU;
4. compare results (identical — Theorem 2) and simulated cost.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.algorithms import sssp
from repro.core import virtual_transform
from repro.gpu import GPUSimulator
from repro.graph import rmat

K = 10  # the paper's degree bound for virtual transformation (§5)


def main() -> None:
    # 1. An irregular input: RMAT graphs have the power-law skew of
    #    real social networks.
    graph = rmat(20_000, 300_000, seed=42, weight_range=(1, 64))
    degrees = graph.out_degrees()
    source = int(np.argmax(degrees))
    print(f"graph: {graph}")
    print(f"max outdegree = {degrees.max()}, mean = {degrees.mean():.1f}")

    # 2. Virtual split transformation: a virtual node array over the
    #    untouched CSR.  This is all Tigr needs at load time.
    virtual = virtual_transform(graph, K, coalesced=True)
    print(f"virtual overlay: {virtual}")
    print(f"space overhead: {(virtual.space_ratio() - 1) * 100:.1f}%")

    # 3. SSSP on both, under the GPU cost model.
    base_sim, tigr_sim = GPUSimulator(), GPUSimulator()
    base = sssp(graph, source, simulator=base_sim)
    tigr = sssp(virtual, source, simulator=tigr_sim)

    # 4. Same answers (implicit value synchronization, Theorem 2)...
    assert np.allclose(base.values, tigr.values)
    assert base.num_iterations == tigr.num_iterations
    reached = int(np.isfinite(base.values).sum())
    print(f"\nSSSP from hub node {source}: reached {reached} nodes "
          f"in {base.num_iterations} iterations (identical results)")

    # ...at a fraction of the simulated cost.
    b, t = base.metrics, tigr.metrics
    print(f"\n{'':14s}{'baseline':>12s}{'Tigr-V+':>12s}")
    print(f"{'time (ms)':14s}{b.total_time_ms:12.3f}{t.total_time_ms:12.3f}")
    print(f"{'warp eff.':14s}{b.warp_efficiency:12.1%}{t.warp_efficiency:12.1%}")
    print(f"{'speedup':14s}{'':12s}{b.total_time_ms / t.total_time_ms:11.2f}x")


if __name__ == "__main__":
    main()
