"""Interop: drop Tigr into an existing NetworkX/SciPy workflow.

A realistic adoption path — the analyst already lives in NetworkX,
but one hot analytic is too slow there.  The loop:

1. build (or receive) a graph as a ``networkx.DiGraph``;
2. bridge it into this library, Tigr-transform, run the analytic
   under the GPU cost model;
3. cross-check against NetworkX's own implementation;
4. hand results back as plain dicts/arrays, and export the graph to
   Matrix Market for the next tool in the pipeline.

Run:  python examples/interop_workflow.py
"""

import networkx as nx
import numpy as np

from repro import run, tigr
from repro.graph.formats import save_mtx
from repro.graph.interop import from_networkx, to_scipy_csr


def main() -> None:
    # 1. the analyst's graph: a NetworkX scale-free network
    nx_graph = nx.scale_free_graph(3_000, seed=11)
    nx_graph = nx.DiGraph(nx_graph)  # collapse multi-edges
    for _, _, data in nx_graph.edges(data=True):
        data["weight"] = 1.0 + (hash(str(data)) % 10)
    print(f"networkx input: {nx_graph.number_of_nodes()} nodes, "
          f"{nx_graph.number_of_edges()} edges")

    # 2. bridge + transform + run
    graph = from_networkx(nx_graph)
    source = int(np.argmax(graph.out_degrees()))
    result = run("sssp", tigr(graph), source)
    print(f"Tigr SSSP from hub {source}: "
          f"{np.isfinite(result.values).sum()} reached, "
          f"{result.metrics.total_time_ms:.3f} simulated ms, "
          f"warp efficiency {result.metrics.warp_efficiency:.0%}")

    # 3. independent cross-check with NetworkX itself
    lengths = nx.single_source_dijkstra_path_length(nx_graph, source)
    mismatches = sum(
        1 for node, dist in lengths.items()
        if not np.isclose(result.values[node], dist)
    )
    print(f"cross-check vs networkx Dijkstra: {mismatches} mismatches "
          f"over {len(lengths)} reached nodes")
    assert mismatches == 0

    # 4. hand off: scipy matrix for linear-algebra tooling, MTX on disk
    matrix = to_scipy_csr(graph)
    print(f"scipy adjacency: {matrix.shape}, nnz={matrix.nnz}")
    save_mtx(graph, "/tmp/interop_graph.mtx", comment="exported by repro")
    print("exported /tmp/interop_graph.mtx for the next pipeline stage")


if __name__ == "__main__":
    main()
