"""Physical split transformations, step by step.

Reproduces the paper's worked examples on real (tiny) graphs:

* Figure 6 — T_star vs UDT on a degree-5 node with K=3: T_star leaves
  two residual nodes, UDT none;
* Table 1 — the space / degree / hops trade-off of the clique,
  circular and star connections, measured;
* Figure 8 — dumb weights: a UDT-transformed weighted graph keeps
  every shortest-path distance (Corollary 2);
* Corollary 3 — +inf dumb weights keep widest paths.

Run:  python examples/transform_playground.py
"""

import numpy as np

from repro.algorithms.reference import reference_sssp, reference_sswp
from repro.core import (
    DumbWeight,
    circular_transform,
    clique_transform,
    predict_properties,
    star_transform,
    udt_transform,
    verify_distance_preservation,
    verify_widest_path_preservation,
)
from repro.graph import rmat, star


def figure6() -> None:
    print("=== Figure 6: T_star vs UDT (degree 5, K = 3)")
    graph = star(5)
    for name, transform in (("T_star", star_transform), ("UDT", udt_transform)):
        result = transform(graph, 3)
        degrees = result.graph.out_degrees()
        family = np.concatenate([[0], np.arange(6, result.graph.num_nodes)])
        residuals = int(np.sum((degrees[family] > 0) & (degrees[family] < 3)))
        print(f"  {name:7s}: +{result.stats.new_nodes} nodes, "
              f"+{result.stats.new_edges} edges, {residuals} residual node(s)")
    print("  -> UDT avoids the residual nodes that recursive T_star creates\n")


def table1() -> None:
    print("=== Table 1, measured (degree 1000, K = 10)")
    graph = star(1000)
    print(f"  {'topology':9s}{'new nodes':>10s}{'new edges':>10s}"
          f"{'new degree':>11s}{'max hops':>9s}")
    transforms = {
        "cliq": clique_transform, "circ": circular_transform,
        "star": star_transform, "udt": udt_transform,
    }
    for name, transform in transforms.items():
        stats = transform(graph, 10).stats
        predicted = predict_properties(name, 1000, 10)
        check = "ok" if (stats.new_nodes, stats.max_family_hops) == (
            predicted.new_nodes, predicted.max_hops) else "MISMATCH"
        print(f"  {name:9s}{stats.new_nodes:>10d}{stats.new_edges:>10d}"
              f"{stats.max_degree_after:>11d}{stats.max_family_hops:>9d}  ({check})")
    print("  -> cliq: quadratic edges; circ: 99 hops; star/udt: cheap + fast\n")


def dumb_weights() -> None:
    print("=== Corollaries 2 & 3: dumb weights on a random weighted graph")
    graph = rmat(400, 4000, seed=3, weight_range=(1, 16))
    source = int(np.argmax(graph.out_degrees()))

    zero = udt_transform(graph, 6, dumb_weight=DumbWeight.ZERO)
    verify_distance_preservation(graph, zero, num_sources=4)
    before = reference_sssp(graph, source)
    after = zero.read_values(reference_sssp(zero.graph, source))
    print(f"  SSSP with weight-0 tree edges: distances identical "
          f"({np.isfinite(before).sum()} reachable) -> Corollary 2 holds")

    inf = udt_transform(graph, 6, dumb_weight=DumbWeight.INFINITY)
    verify_widest_path_preservation(graph, inf, num_sources=4)
    widths = reference_sswp(graph, source)
    widths_after = inf.read_values(reference_sswp(inf.graph, source))
    assert np.allclose(widths, widths_after)
    print(f"  SSWP with weight-inf tree edges: widths identical "
          f"-> Corollary 3 holds")
    assert np.allclose(before, after)


def main() -> None:
    figure6()
    table1()
    dumb_weights()


if __name__ == "__main__":
    main()
