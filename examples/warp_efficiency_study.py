"""Warp-efficiency study: where Tigr's benefit comes from, and when
there is none.

Sweeps the degree bound K on two inputs:

* a power-law graph (Tigr's target workload) — warp efficiency climbs
  and simulated time falls as K shrinks toward warp-friendly sizes;
* a perfectly regular grid — already balanced, so the transformation
  buys (almost) nothing: the paper's approach attacks *irregularity*,
  not graphs in general.

Also contrasts the default and coalesced edge layouts (§4.4).

Run:  python examples/warp_efficiency_study.py
"""

import numpy as np

from repro.algorithms import sssp
from repro.core import virtual_transform
from repro.gpu import GPUSimulator
from repro.graph import grid_2d, rmat


def profile(graph, source, target=None):
    simulator = GPUSimulator()
    result = sssp(target if target is not None else graph, source,
                  simulator=simulator)
    m = result.metrics
    return m.total_time_ms, m.warp_efficiency


def sweep(name, graph):
    source = int(np.argmax(graph.out_degrees()))
    base_ms, base_eff = profile(graph, source)
    print(f"\n=== {name}: {graph}")
    print(f"{'config':>16s} {'time (ms)':>10s} {'warp eff':>9s} {'speedup':>8s}")
    print(f"{'baseline':>16s} {base_ms:10.3f} {base_eff:9.1%} {'1.00x':>8s}")
    for k in (4, 8, 16, 32):
        for coalesced in (False, True):
            label = f"K={k}{'+coal' if coalesced else ''}"
            virtual = virtual_transform(graph, k, coalesced=coalesced)
            ms, eff = profile(graph, source, virtual)
            print(f"{label:>16s} {ms:10.3f} {eff:9.1%} {base_ms / ms:7.2f}x")


def main() -> None:
    # the paper's target: heavy-tailed degree distribution
    powerlaw = rmat(8_000, 120_000, seed=5, weight_range=(1, 64))
    sweep("power-law graph", powerlaw)

    # the control: perfectly regular degrees (max degree 4)
    grid = grid_2d(90, 90, weight_range=(1, 64), seed=5)
    sweep("regular 2-D grid", grid)

    print(
        "\nTakeaway: on the power-law graph the virtual transformation"
        "\nmultiplies warp efficiency and simulated speed; on the regular"
        "\ngrid it is near-neutral - irregularity is the enemy, and Tigr"
        "\nremoves exactly that."
    )


if __name__ == "__main__":
    main()
