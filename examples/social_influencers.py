"""Social-network analytics on a Tigr-virtualised graph.

The paper's introduction motivates graph analytics with social-network
workloads: "identifying influencers in social networks".  This example
builds a preferential-attachment social graph (the mechanism that
*creates* power-law hubs) and runs the analytics stack on a virtually
transformed view:

* PageRank — global influence;
* single-source betweenness from the top hub — brokerage;
* connected components — community reach;
* BFS from the top influencer — how few hops cover the network.

Run:  python examples/social_influencers.py
"""

import numpy as np

from repro.algorithms import bc, bfs, connected_components, pagerank
from repro.core import virtual_transform
from repro.graph import barabasi_albert, degree_stats, to_undirected

K = 10


def main() -> None:
    # Preferential attachment: early members become hubs, exactly the
    # skew that makes GPUs struggle (§2.3).
    network = barabasi_albert(5_000, 4, seed=7)
    stats = degree_stats(network)
    print(f"social network: {network}")
    print(f"degree skew: max={stats.max_degree}, mean={stats.mean_degree:.1f}, "
          f"gini={stats.gini:.2f}")

    virtual = virtual_transform(network, K, coalesced=True)

    # --- global influence: PageRank -----------------------------------
    ranks = pagerank(virtual, tolerance=1e-12).values
    top = np.argsort(ranks)[::-1][:5]
    print("\ntop influencers by PageRank:")
    for node in top:
        print(f"  member {node:5d}: rank {ranks[node]:.5f}, "
              f"{network.out_degree(int(node))} connections")

    # --- brokerage: betweenness from the biggest hub -------------------
    hub = int(top[0])
    centrality = bc(virtual, hub).centrality
    brokers = np.argsort(centrality)[::-1][:5]
    print(f"\ntop brokers on shortest paths from member {hub}:")
    for node in brokers:
        print(f"  member {node:5d}: dependency {centrality[node]:.1f}")

    # --- communities: connected components -----------------------------
    undirected = to_undirected(network)
    labels = connected_components(
        virtual_transform(undirected, K, coalesced=True)
    ).values.astype(np.int64)
    sizes = np.bincount(labels, minlength=network.num_nodes)
    communities = int((sizes > 0).sum())
    print(f"\ncommunities: {communities} "
          f"(largest spans {sizes.max()} members)")

    # --- reach: BFS hops from the top influencer ------------------------
    hops = bfs(virtual, hub).values
    finite = hops[np.isfinite(hops)]
    print(f"\nmember {hub} reaches {len(finite)} members; "
          f"90% within {int(np.percentile(finite, 90))} hops "
          f"(small-world, as §2.3 expects)")


if __name__ == "__main__":
    main()
