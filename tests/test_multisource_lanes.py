"""Lane-parallel multi-source execution: equivalence and accounting.

The contract under test is exact: column ``k`` of a lane-parallel run
is **bitwise identical** to the scalar run from ``sources[k]`` — on
identity, UDT, and virtual targets, in push and pull mode, through the
bit-packed BFS fast path and the generic float path, and through the
derived analytics (closeness, approximate BC) and the serving layer's
batch fan-out.  Every comparison here is ``np.array_equal``, never
``allclose``.
"""

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.multi_source import (
    DEFAULT_MAX_LANES,
    approximate_bc,
    closeness_centrality,
    lane_blocks,
    multi_source_distances,
)
from repro.algorithms.programs import BFSProgram, PageRankProgram, SSSPProgram
from repro.algorithms.sssp import sssp
from repro.core.udt import udt_transform
from repro.core.virtual import virtual_transform
from repro.engine.pull import run_pull, run_pull_lanes
from repro.engine.push import EngineOptions, run_push, run_push_lanes
from repro.engine.schedule import NodeScheduler, VirtualScheduler
from repro.errors import EngineError
from repro.graph.generators import rmat
from repro.service.artifacts import ArtifactKey, TransformArtifact
from repro.service.batching import QueryBatch, run_batch_on_target
from repro.service.catalog import GraphCatalog
from repro.service.metrics import QueryRecord, ServiceMetrics
from repro.service.query import QueryRequest


def make_graph(seed, *, weighted):
    graph = rmat(120, 900, seed=seed, weight_range=(1.0, 6.0))
    return graph if weighted else graph.without_weights()


def pick_sources(graph, seed, count=9):
    rng = np.random.default_rng(seed)
    return [
        int(s) for s in rng.choice(graph.num_nodes, size=count, replace=False)
    ]


TARGET_KINDS = ("identity", "udt", "virtual")


def make_target(graph, kind):
    if kind == "identity":
        return graph
    if kind == "udt":
        return udt_transform(graph, 4).graph
    return virtual_transform(graph, 4)


# ----------------------------------------------------------------------
# Engine-level equivalence
# ----------------------------------------------------------------------
class TestLaneLoopEquivalence:
    @pytest.mark.parametrize("seed", (3, 7, 21))
    @pytest.mark.parametrize("weighted", (True, False))
    @pytest.mark.parametrize("kind", TARGET_KINDS)
    def test_distance_matrix_matches_loop(self, seed, weighted, kind):
        graph = make_graph(seed, weighted=weighted)
        target = make_target(graph, kind)
        sources = pick_sources(graph, seed)
        looped = multi_source_distances(
            target, sources, weighted=weighted, mode="loop"
        )
        lanes = multi_source_distances(
            target, sources, weighted=weighted, mode="lanes"
        )
        assert np.array_equal(looped, lanes)

    def test_push_lane_columns_match_scalar_runs(self):
        graph = make_graph(5, weighted=True)
        sources = pick_sources(graph, 5)
        for scheduler in (
            NodeScheduler(graph),
            VirtualScheduler(virtual_transform(graph, 4)),
        ):
            result = run_push_lanes(scheduler, SSSPProgram(), sources)
            assert result.values.shape == (graph.num_nodes, len(sources))
            assert result.num_lanes == len(sources)
            for k, source in enumerate(sources):
                scalar = run_push(scheduler, SSSPProgram(), source)
                assert np.array_equal(result.values[:, k], scalar.values)

    def test_pull_lane_columns_match_scalar_runs(self):
        graph = make_graph(5, weighted=True)
        reverse = graph.reverse()
        sources = pick_sources(graph, 6)
        for scheduler in (
            NodeScheduler(reverse),
            VirtualScheduler(virtual_transform(reverse, 4)),
        ):
            result = run_pull_lanes(scheduler, SSSPProgram(), graph, sources)
            for k, source in enumerate(sources):
                scalar = run_pull(scheduler, SSSPProgram(), graph, source)
                assert np.array_equal(result.values[:, k], scalar.values)

    def test_bitpacked_and_generic_paths_agree(self):
        """Unweighted BFS under the default options takes the
        bit-packed visited-mask path; ``sync_relaxation_blocks=2``
        forces the generic float path.  Hop counts are a unique fixed
        point, so all four runs must agree exactly."""
        graph = make_graph(9, weighted=False)
        assert graph.weights is None
        sources = pick_sources(graph, 9)
        packed = EngineOptions()
        generic = EngineOptions(sync_relaxation_blocks=2)
        results = {}
        for name, options in (("packed", packed), ("generic", generic)):
            looped = multi_source_distances(
                graph, sources, weighted=False, mode="loop", options=options
            )
            lanes = multi_source_distances(
                graph, sources, weighted=False, mode="lanes", options=options
            )
            assert np.array_equal(looped, lanes)
            results[name] = lanes
        assert np.array_equal(results["packed"], results["generic"])

    def test_duplicate_sources_share_a_lane(self):
        graph = make_graph(2, weighted=False)
        sources = [4, 17, 4, 99, 17, 4]
        looped = multi_source_distances(
            graph, sources, weighted=False, mode="loop"
        )
        lanes = multi_source_distances(
            graph, sources, weighted=False, mode="lanes"
        )
        assert lanes.shape == (len(sources), graph.num_nodes)
        assert np.array_equal(looped, lanes)
        # duplicates are served from one lane's column
        assert np.array_equal(lanes[0], lanes[2])
        assert np.array_equal(lanes[0], lanes[5])

    def test_empty_sources(self):
        graph = make_graph(2, weighted=True)
        for mode in ("auto", "lanes", "loop"):
            rows = multi_source_distances(graph, [], mode=mode)
            assert rows.shape == (0, graph.num_nodes)
        result = run_push_lanes(NodeScheduler(graph), SSSPProgram(), [])
        assert result.values.shape == (graph.num_nodes, 0)
        assert result.converged

    def test_lane_blocking_matches_unblocked(self):
        graph = make_graph(13, weighted=True)
        sources = pick_sources(graph, 13, count=11)
        wide = multi_source_distances(
            graph, sources, mode="lanes", max_lanes=DEFAULT_MAX_LANES
        )
        blocked = multi_source_distances(
            graph, sources, mode="lanes", max_lanes=4
        )
        assert np.array_equal(wide, blocked)

    def test_lane_blocks_partition(self):
        slices = list(lane_blocks(10, 4))
        assert [(s.start, s.stop) for s in slices] == [(0, 4), (4, 8), (8, 10)]
        with pytest.raises(EngineError):
            list(lane_blocks(10, 0))

    def test_unsafe_program_rejected(self):
        """ADD reductions double-count under the union frontier; both
        lane engines must refuse them (SPLIT006's runtime half)."""
        graph = make_graph(2, weighted=False)
        program = PageRankProgram()
        program.set_out_degrees(graph.out_degrees())
        assert not program.lane_safe
        with pytest.raises(EngineError, match="lane-safe"):
            run_push_lanes(NodeScheduler(graph), program, [0, 1])
        with pytest.raises(EngineError, match="lane-safe"):
            run_pull_lanes(
                NodeScheduler(graph.reverse()), program, graph, [0, 1]
            )

    def test_default_lane_relax_matches_scalar_columns(self):
        """The derived lane_relax must be the scalar relax applied per
        column — the property the engine's per-lane calls rely on."""
        rng = np.random.default_rng(0)
        src = rng.uniform(0, 10, size=(50, 4))
        w = rng.uniform(1, 5, size=(50, 1))
        for program, weights in ((BFSProgram(), None), (SSSPProgram(), w)):
            batched = program.lane_relax(src, weights)
            for k in range(src.shape[1]):
                col_w = None if weights is None else weights[:, 0]
                expect = program.relax(src[:, k], col_w)
                assert np.array_equal(batched[:, k], expect)

    def test_invalid_mode_rejected(self):
        graph = make_graph(2, weighted=True)
        with pytest.raises(EngineError, match="mode"):
            multi_source_distances(graph, [0], mode="warp")


# ----------------------------------------------------------------------
# Derived analytics ride the same lanes
# ----------------------------------------------------------------------
class TestDerivedAnalytics:
    def test_closeness_lanes_equals_loop(self):
        graph = make_graph(4, weighted=False)
        sources = pick_sources(graph, 4, count=8)
        looped = closeness_centrality(graph, sources=sources, mode="loop")
        lanes = closeness_centrality(graph, sources=sources, mode="lanes")
        assert np.array_equal(looped, lanes)

    def test_closeness_is_one_multi_source_call(self, monkeypatch):
        """The whole picked source set must go through a single
        lane-parallel traversal, not a per-source loop."""
        import repro.algorithms.multi_source as ms

        calls = []
        original = run_push_lanes

        def counting(scheduler, program, sources, **kwargs):
            calls.append(list(sources))
            return original(scheduler, program, sources, **kwargs)

        monkeypatch.setattr(ms, "run_push_lanes", counting)
        graph = make_graph(4, weighted=False)
        closeness_centrality(graph, sources=[3, 11, 25, 40, 77, 101])
        assert len(calls) == 1
        assert len(calls[0]) == 6

    def test_approximate_bc_lanes_equals_loop(self):
        graph = make_graph(6, weighted=False)
        sources = pick_sources(graph, 6, count=6)
        looped = approximate_bc(graph, sources=sources, mode="loop")
        lanes = approximate_bc(graph, sources=sources, mode="lanes")
        assert np.array_equal(looped, lanes)


# ----------------------------------------------------------------------
# Serving layer: one traversal per batch, and it shows in the metrics
# ----------------------------------------------------------------------
class TestServiceLaneAccounting:
    def _batch(self, graph, algorithm, requests):
        batch = QueryBatch(
            graph=graph,
            algorithm=algorithm,
            transform="none",
            degree_bound=0,
            options=EngineOptions(),
        )
        batch.requests.extend(requests)
        return batch

    def test_batch_collapses_to_one_traversal(self):
        graph = make_graph(8, weighted=False)
        batch = self._batch(graph, "bfs", [
            QueryRequest(algorithm="bfs", graph=graph, sources=(0, 5, 9)),
            QueryRequest(algorithm="bfs", graph=graph, sources=(9, 33)),
        ])
        out, execution = run_batch_on_target(batch, graph)
        assert execution.traversals == 1
        assert execution.lanes == 4  # sources 0, 5, 9, 33 deduplicated
        assert execution.traversals_saved == 3
        scheduler = NodeScheduler(graph)
        for request in batch.requests:
            for source in request.sources:
                expect = bfs(scheduler, source).values
                assert np.array_equal(out[request.request_id][source], expect)

    def test_batch_counts_lane_blocks(self):
        graph = make_graph(8, weighted=False)
        sources = tuple(range(DEFAULT_MAX_LANES + 6))
        batch = self._batch(graph, "bfs", [
            QueryRequest(algorithm="bfs", graph=graph, sources=sources),
        ])
        _, execution = run_batch_on_target(batch, graph)
        assert execution.traversals == 2  # ceil(70 / 64)
        assert execution.lanes == len(sources)
        assert execution.traversals_saved == len(sources) - 2

    def test_single_source_batch_saves_nothing(self):
        graph = make_graph(8, weighted=True)
        batch = self._batch(graph, "sssp", [
            QueryRequest(algorithm="sssp", graph=graph, sources=(7,)),
        ])
        out, execution = run_batch_on_target(batch, graph)
        assert execution.traversals == 1
        assert execution.lanes == 1
        assert execution.traversals_saved == 0
        expect = sssp(NodeScheduler(graph), 7).values
        assert np.array_equal(
            out[batch.requests[0].request_id][7], expect
        )

    def test_metrics_summary_reports_lane_occupancy(self):
        metrics = ServiceMetrics()
        record = dict(
            stage_seconds={"total": 0.01},
            cache_hit=False, degraded=False, timed_out=False,
            cancelled=False, failed=False,
        )
        metrics.record(QueryRecord(
            **record, traversals=1, lanes=16, traversals_saved=15
        ))
        metrics.record(QueryRecord(
            **record, traversals=1, lanes=4, traversals_saved=3
        ))
        summary = metrics.summary()
        assert summary["lanes_per_traversal"] == pytest.approx(10.0)
        assert summary["traversals_saved"] == 18

    def test_metrics_summary_lane_fields_without_traffic(self):
        summary = ServiceMetrics().summary()
        assert summary["lanes_per_traversal"] == 0.0
        assert summary["traversals_saved"] == 0


# ----------------------------------------------------------------------
# Prepared graphs live under the catalog's byte budget
# ----------------------------------------------------------------------
class TestPreparedArtifactBudget:
    def _prepared(self, graph):
        key = ArtifactKey.for_prepared(graph, symmetrize=False, weighted=False)
        return key, TransformArtifact(
            key=key, payload=graph, build_seconds=0.01
        )

    def test_prepared_artifacts_share_budget_and_spill(self, tmp_path):
        g1 = make_graph(31, weighted=False)
        g2 = make_graph(32, weighted=False)
        key1, art1 = self._prepared(g1)
        key2, art2 = self._prepared(g2)
        budget = max(art1.nbytes(), art2.nbytes()) + 64
        catalog = GraphCatalog(budget, spill_dir=str(tmp_path))

        built, origin = catalog.get_for_key(key1, lambda: art1)
        assert origin == "built"
        assert built.payload is g1

        # same key again: memory hit, no rebuild
        def rebuilt():
            raise AssertionError("rebuilt a cached prepared graph")

        _, origin = catalog.get_for_key(key1, rebuilt)
        assert origin == "memory"

        # the second prepared graph exceeds the budget -> key1 evicts
        catalog.get_for_key(key2, lambda: art2)
        assert key1 not in catalog and key2 in catalog

        # ...but only to the disk tier: no rebuild on the way back
        reloaded, origin = catalog.get_for_key(key1, rebuilt)
        assert origin == "disk"
        assert np.array_equal(reloaded.payload.targets, g1.targets)
        assert reloaded.payload.fingerprint() == g1.fingerprint()

    def test_prepared_key_distinguishes_recipes(self):
        graph = make_graph(31, weighted=True)
        keys = {
            ArtifactKey.for_prepared(graph, symmetrize=s, weighted=w)
            for s in (True, False) for w in (True, False)
        }
        assert len(keys) == 4
        for key in keys:
            assert key.kind == "prepared"

    def test_prepared_kind_has_no_default_builder(self):
        from repro.errors import ServiceError

        graph = make_graph(31, weighted=False)
        key, _ = self._prepared(graph)
        catalog = GraphCatalog(1 << 20)
        with pytest.raises(ServiceError, match="prepared"):
            catalog.get_for_key(key, lambda: catalog._build(graph, key))
