"""Service soak: concurrent submitters, mixed outcomes, conservation.

Budget is dialable through the environment so CI can run a short pass
on every push and a longer one on demand:

``REPRO_SOAK_THREADS``   submitter threads (default 4)
``REPRO_SOAK_REQUESTS``  requests per submitter (default 40)
``REPRO_SOAK_SEED``      workload seed (default 20180324)

The invariant under test is *ticket-state conservation*: every
successfully submitted ticket resolves exactly once, and the
:class:`ServiceMetrics` counters partition them — ``queries_total``
equals the submitted count, and ok/failed/cancelled results match the
aggregate's ``queries_failed``/``queries_cancelled`` exactly.  A
ticket rejected at submit time (queue full) must never surface in any
counter.
"""

import os
import random
import threading

import pytest

from repro.errors import ServiceError
from repro.graph.generators import rmat
from repro.service import AnalyticsService, GraphCatalog, QueryRequest

SOAK_THREADS = int(os.environ.get("REPRO_SOAK_THREADS", "4"))
SOAK_REQUESTS = int(os.environ.get("REPRO_SOAK_REQUESTS", "40"))
SOAK_SEED = int(os.environ.get("REPRO_SOAK_SEED", "20180324"))


@pytest.mark.soak
class TestServiceSoak:
    def test_concurrent_mixed_workload_conserves_tickets(self):
        graph = rmat(600, 5000, seed=5, weight_range=(1, 8))
        service = AnalyticsService(
            GraphCatalog(), workers=3, queue_size=32, backend="threads"
        )
        service.register("g", graph)

        tickets = []
        rejected = [0]
        lock = threading.Lock()

        def submitter(index: int) -> None:
            rng = random.Random(SOAK_SEED + index)
            mine = []
            refused = 0
            for _ in range(SOAK_REQUESTS):
                roll = rng.random()
                algorithm = rng.choice(("bfs", "sssp", "pr"))
                kwargs = {}
                if roll < 0.15:
                    # a deadline so tight it usually expires in queue
                    kwargs["timeout_s"] = 1e-4
                # churn the catalog: distinct K cells force cold builds,
                # which is what keeps the queue under real pressure
                # (pr only runs on the virtual overlay, never udt)
                transform = (
                    "virtual"
                    if algorithm == "pr"
                    else rng.choice(("udt", "virtual"))
                )
                k = rng.choice((None, 4, 8, 16))
                if algorithm == "pr":
                    request = QueryRequest(
                        "pr", "g", transform=transform, degree_bound=k, **kwargs
                    )
                else:
                    request = QueryRequest.single(
                        algorithm, "g", rng.randrange(graph.num_nodes),
                        transform=transform, degree_bound=k, **kwargs
                    )
                try:
                    ticket = service.submit(
                        request, block=rng.random() < 0.5
                    )
                except ServiceError:
                    refused += 1  # queue full on a non-blocking submit
                    continue
                if rng.random() < 0.1:
                    ticket.cancel()  # may race completion; either is fine
                mine.append(ticket)
            with lock:
                tickets.extend(mine)
                rejected[0] += refused

        threads = [
            threading.Thread(target=submitter, args=(i,))
            for i in range(SOAK_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # clean shutdown drains everything still queued
        service.close(wait=True)

        results = [ticket.result(0.5) for ticket in tickets]
        ok = sum(1 for r in results if r.ok)
        cancelled = sum(1 for r in results if r.error == "cancelled")
        timed_out = sum(
            1 for r in results if r.error == "timed out in queue"
        )
        failed = sum(1 for r in results if not r.ok)
        assert failed == cancelled + timed_out, (
            "the only failure modes this workload can produce are "
            "cancellation and queue expiry"
        )

        summary = service.metrics.summary()
        # conservation: submitted tickets, and nothing else, are counted
        assert summary["queries_total"] == len(tickets)
        assert summary["queries_cancelled"] == cancelled
        # cancelled tickets record cancelled=True/failed=False, so the
        # aggregate's failure counter is exactly the queue expiries
        assert summary["queries_failed"] == timed_out
        # late finishes also count as timed out (metrics-only), so >=
        assert summary["queries_timed_out"] >= timed_out
        assert ok == len(tickets) - failed
        # rejected submits never became tickets or records
        assert len(tickets) + rejected[0] == SOAK_THREADS * SOAK_REQUESTS
        # the workload exercised what it claims to exercise
        assert ok > 0
        for result in results:
            if result.ok:
                assert result.values, "ok result with no value arrays"

        # shutdown is sticky: no new work, no leaked dispatchers
        with pytest.raises(ServiceError, match="stopped"):
            service.submit(QueryRequest.single("bfs", "g", 0))

    def test_cancel_storm_resolves_every_ticket(self):
        graph = rmat(400, 3000, seed=6, weight_range=(1, 8))
        with AnalyticsService(
            GraphCatalog(), workers=2, queue_size=64, backend="threads"
        ) as service:
            service.register("g", graph)
            blocker = threading.Event()
            original = service._prepare

            def slow_prepare(g, algorithm):
                blocker.wait(5)
                return original(g, algorithm)

            service._prepare = slow_prepare
            tickets = [
                service.submit(
                    QueryRequest.single("bfs", "g", s % graph.num_nodes)
                )
                for s in range(24)
            ]
            cancellers = [
                threading.Thread(
                    target=lambda shard: [t.cancel() for t in shard],
                    args=(tickets[i::4],),
                )
                for i in range(4)
            ]
            for thread in cancellers:
                thread.start()
            for thread in cancellers:
                thread.join()
            blocker.set()
            results = [t.result(30.0) for t in tickets]
        # every ticket resolved exactly one way; the queue head may
        # have started executing before the storm, everything else
        # was drained as cancelled
        assert all(r.ok or r.error == "cancelled" for r in results)
        assert service.metrics.queries_cancelled == sum(
            1 for r in results if r.error == "cancelled"
        )
        assert (
            service.metrics.queries_total == len(tickets)
        )
