"""PowerLyra-style vertex-cut partitioning vs Tigr (§7.1's contrast)."""

import numpy as np
import pytest

from repro.algorithms.programs import SSSPProgram
from repro.algorithms.reference import reference_sssp
from repro.graph.generators import rmat
from repro.multigpu import MultiGPUConfig, run_multi_gpu
from repro.multigpu.partition import (
    mirror_count,
    partition_balance,
    powerlyra_partition,
    range_partition,
)


@pytest.fixture(scope="module")
def skewed_graph():
    # strong skew: a few hubs own most edges
    return rmat(400, 8000, seed=61, weight_range=(1, 9))


@pytest.fixture(scope="module")
def source(skewed_graph):
    return int(np.argmax(skewed_graph.out_degrees()))


class TestPartitionStructure:
    def test_all_edges_placed_once(self, skewed_graph):
        partitions = powerlyra_partition(skewed_graph, 4)
        assert sum(p.num_edges for p in partitions) == skewed_graph.num_edges

    def test_ownership_covers_all_nodes(self, skewed_graph):
        partitions = powerlyra_partition(skewed_graph, 4)
        owned = np.concatenate([p.owned for p in partitions])
        assert sorted(owned.tolist()) == list(range(skewed_graph.num_nodes))

    def test_hubs_are_mirrored(self, skewed_graph):
        partitions = powerlyra_partition(skewed_graph, 4, high_degree_threshold=50)
        assert mirror_count(partitions) > 0
        # a mirrored hub's slices live on devices that do not own it
        for partition in partitions:
            owned = set(partition.owned.tolist())
            for hub in partition.mirrored:
                assert int(hub) not in owned

    def test_low_degree_nodes_not_mirrored(self, skewed_graph):
        partitions = powerlyra_partition(skewed_graph, 4, high_degree_threshold=50)
        degrees = skewed_graph.out_degrees()
        for partition in partitions:
            assert np.all(degrees[partition.mirrored] > 50)

    def test_vertex_cut_balances_better_than_edge_cut_on_hub_graph(self):
        """The PowerLyra payoff: splitting hub edges across devices
        beats any whole-node placement when one hub dominates."""
        from repro.graph.generators import star

        hub = star(4000)
        vertex_cut = partition_balance(
            powerlyra_partition(hub, 4, high_degree_threshold=10)
        )
        edge_cut = partition_balance(range_partition(hub, 4))
        assert vertex_cut < edge_cut

    def test_no_hubs_degenerates_to_edge_partition(self):
        from repro.graph.generators import regular_ring

        ring = regular_ring(100, 3)
        partitions = powerlyra_partition(ring, 3, high_degree_threshold=10)
        assert mirror_count(partitions) == 0


class TestExecution:
    def test_results_match_reference(self, skewed_graph, source):
        result = run_multi_gpu(
            skewed_graph, SSSPProgram(), source,
            config=MultiGPUConfig(num_devices=4),
            partitioner=powerlyra_partition,
        )
        assert np.allclose(result.values, reference_sssp(skewed_graph, source))

    def test_mirror_syncs_charged(self, skewed_graph, source):
        """The §7.1 cost PowerLyra pays and Tigr does not: explicit
        master->mirror synchronization of the partitioned vertices."""
        plain = run_multi_gpu(
            skewed_graph, SSSPProgram(), source,
            config=MultiGPUConfig(num_devices=4),
        )
        lyra = run_multi_gpu(
            skewed_graph, SSSPProgram(), source,
            config=MultiGPUConfig(num_devices=4),
            partitioner=lambda g, d: powerlyra_partition(
                g, d, high_degree_threshold=50
            ),
        )
        assert plain.mirror_syncs == 0
        assert lyra.mirror_syncs > 0
        assert np.allclose(plain.values, lyra.values)

    def test_tigr_needs_no_mirrors_for_the_same_balance(self, skewed_graph, source):
        """The §7.1 conclusion: Tigr's splitting balances *within* a
        device with implicit synchronization — same kernel benefit,
        zero sync messages."""
        tigr = run_multi_gpu(
            skewed_graph, SSSPProgram(), source,
            config=MultiGPUConfig(num_devices=4), degree_bound=8,
        )
        lyra = run_multi_gpu(
            skewed_graph, SSSPProgram(), source,
            config=MultiGPUConfig(num_devices=4),
            partitioner=lambda g, d: powerlyra_partition(
                g, d, high_degree_threshold=50
            ),
        )
        assert tigr.mirror_syncs == 0
        assert lyra.mirror_syncs > 0
        assert tigr.kernel_time_ms < lyra.kernel_time_ms * 1.5
