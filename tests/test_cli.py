"""Tests for the ``python -m repro`` command-line interface."""

import numpy as np
import pytest

from repro.__main__ import main
from repro.graph.generators import rmat
from repro.graph.io import save_edge_list, save_npz


class TestInfo:
    def test_dataset(self, capsys):
        assert main(["info", "pokec", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "num_nodes" in out and "gini" in out

    def test_diameter_flag(self, capsys):
        assert main(["info", "pokec", "--scale", "0.1", "--diameter"]) == 0
        assert "diameter_estimate" in capsys.readouterr().out

    def test_edge_list_file(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        save_edge_list(rmat(30, 100, seed=1), path)
        assert main(["info", str(path)]) == 0
        assert "num_nodes" in capsys.readouterr().out

    def test_npz_file(self, tmp_path, capsys):
        path = tmp_path / "g.npz"
        save_npz(rmat(30, 100, seed=1), path)
        assert main(["info", str(path)]) == 0

    def test_unknown_graph(self, capsys):
        assert main(["info", "doesnotexist"]) == 2
        assert "error" in capsys.readouterr().err


class TestTransform:
    def test_udt(self, capsys):
        assert main(["transform", "pokec", "--scale", "0.1",
                     "--method", "udt", "--k", "4"]) == 0
        out = capsys.readouterr().out
        assert "UDT transform" in out and "space ratio" in out

    def test_virtual_plus(self, capsys):
        assert main(["transform", "pokec", "--scale", "0.1", "--k", "8"]) == 0
        out = capsys.readouterr().out
        assert "coalesced" in out and "virtual nodes" in out

    def test_virtual_default(self, capsys):
        assert main(["transform", "pokec", "--scale", "0.1",
                     "--method", "virtual"]) == 0
        assert "default" in capsys.readouterr().out


class TestRunAndCompare:
    def test_run_default_method(self, capsys):
        assert main(["run", "sssp", "pokec", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "tigr-v+" in out and "warp efficiency" in out

    def test_run_explicit_source(self, capsys):
        assert main(["run", "bfs", "pokec", "--scale", "0.1",
                     "--source", "0"]) == 0
        assert "iterations" in capsys.readouterr().out

    def test_run_unknown_method(self, capsys):
        assert main(["run", "sssp", "pokec", "--scale", "0.1",
                     "--method", "ligra"]) == 2
        assert "unknown method" in capsys.readouterr().err

    def test_compare(self, capsys):
        assert main(["compare", "sswp", "pokec", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        # gunrock lacks SSWP -> a dash; Tigr variants present
        assert "gunrock" in out and "tigr-v+" in out and "-" in out

    def test_bad_algorithm_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["run", "coloring", "pokec"])


class TestBenchForwarding:
    def test_bench_subset(self, capsys):
        assert main(["bench", "table1", "--scale", "0.1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_bench_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            main(["bench", "table99"])


class TestInfoFingerprint:
    def test_fingerprint_printed(self, capsys):
        assert main(["info", "pokec", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "fingerprint" in out

    def test_fingerprint_matches_library(self, tmp_path, capsys):
        g = rmat(30, 100, seed=1)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        assert main(["info", str(path)]) == 0
        assert g.fingerprint() in capsys.readouterr().out


class TestQuery:
    def test_single_query(self, capsys):
        assert main(["query", "sssp", "pokec", "--scale", "0.1",
                     "--source", "0"]) == 0
        out = capsys.readouterr().out
        assert "cache hit:    False" in out
        assert "values[source 0]" in out

    def test_repeat_hits_cache(self, capsys):
        assert main(["query", "sssp", "pokec", "--scale", "0.1",
                     "--source", "0", "--repeat", "2", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "round 1" in out and "round 2" in out
        assert "cache hit:    True" in out  # round 2 is warm
        assert "cache_hit_rate" in out

    def test_multi_source_batch(self, capsys):
        assert main(["query", "bfs", "pokec", "--scale", "0.1",
                     "--sources", "0,3,3"]) == 0
        out = capsys.readouterr().out
        assert "batched with: 2 other request(s)" in out

    def test_default_source_is_hub(self, capsys):
        assert main(["query", "bfs", "pokec", "--scale", "0.1"]) == 0
        assert "max-outdegree source" in capsys.readouterr().out

    def test_sourceless_analytic(self, capsys):
        assert main(["query", "pr", "pokec", "--scale", "0.1"]) == 0
        assert "values[all nodes]" in capsys.readouterr().out

    def test_transform_override(self, capsys):
        assert main(["query", "sssp", "pokec", "--scale", "0.1",
                     "--source", "0", "--transform", "udt", "--k", "4"]) == 0
        assert "transform=udt, K=4" in capsys.readouterr().out

    def test_invalid_transform_for_algorithm(self, capsys):
        # UDT cannot serve PR (Corollary 4) -> clean error, exit 2
        assert main(["query", "pr", "pokec", "--scale", "0.1",
                     "--transform", "udt"]) == 2
        assert "error" in capsys.readouterr().err

    def test_non_numeric_sources_rejected(self, capsys):
        assert main(["query", "sssp", "pokec", "--scale", "0.1",
                     "--sources", "a,b"]) == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_out_of_range_source_rejected(self, capsys):
        assert main(["query", "sssp", "pokec", "--scale", "0.1",
                     "--source", "999999"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_spill_dir_populated_on_eviction(self, tmp_path, capsys):
        assert main(["query", "sssp", "pokec", "--scale", "0.1",
                     "--source", "0",
                     "--spill-dir", str(tmp_path)]) == 0


class TestServe:
    def test_synthetic_workload(self, capsys):
        assert main(["serve", "pokec", "--scale", "0.1",
                     "--requests", "12", "--workers", "2",
                     "--algorithms", "bfs,pr", "--batch", "4"]) == 0
        out = capsys.readouterr().out
        assert "served 12/12 queries" in out
        assert "cache_hit_rate" in out and "max_queue_depth" in out

    def test_unknown_algorithm_rejected(self, capsys):
        assert main(["serve", "pokec", "--scale", "0.1",
                     "--algorithms", "bfs,coloring"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err


class TestCLIGaps:
    def test_unsupported_method_algorithm_pair(self, capsys):
        # tigr-udt ships no PR (Corollary 4 needs pull) -> clean error
        assert main(["run", "pr", "pokec", "--scale", "0.1",
                     "--method", "tigr-udt"]) == 2
        assert "error" in capsys.readouterr().err

    def test_info_on_npz_with_weights(self, tmp_path, capsys):
        path = tmp_path / "g.npz"
        save_npz(rmat(30, 100, seed=1, weight_range=(1, 4)), path)
        assert main(["info", str(path)]) == 0

    def test_transform_weights_for_sswp(self, capsys):
        assert main(["transform", "pokec", "--scale", "0.1",
                     "--method", "udt", "--k", "4",
                     "--weights-for", "sswp"]) == 0
