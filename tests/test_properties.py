"""Tests for the Theorem 1 / Corollary 1–4 verifiers themselves."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.properties import (
    check_split_transformation,
    family_members,
    verify_degree_bound,
    verify_distance_preservation,
    verify_in_degrees,
    verify_path_preservation,
    verify_widest_path_preservation,
)
from repro.core.splits import circular_transform, clique_transform, star_transform
from repro.core.types import TransformResult, TransformStats
from repro.core.udt import udt_transform
from repro.core.weights import DumbWeight
from repro.graph.builder import from_edge_list
from repro.graph.generators import rmat, star


class TestVerifiersPassOnValidTransforms:
    @pytest.mark.parametrize(
        "transform", [udt_transform, clique_transform, circular_transform, star_transform]
    )
    def test_path_and_distance(self, transform, powerlaw_graph):
        result = transform(powerlaw_graph, 4)
        verify_path_preservation(powerlaw_graph, result, num_sources=3)
        verify_distance_preservation(powerlaw_graph, result, num_sources=3)
        verify_in_degrees(powerlaw_graph, result)

    def test_widest_path(self, powerlaw_graph):
        result = udt_transform(powerlaw_graph, 4, dumb_weight=DumbWeight.INFINITY)
        verify_widest_path_preservation(powerlaw_graph, result, num_sources=3)

    def test_degree_bound_strict(self, powerlaw_graph):
        result = udt_transform(powerlaw_graph, 6)
        assert verify_degree_bound(result, strict=True) <= 6

    def test_degree_bound_nonstrict_for_star(self, powerlaw_graph):
        result = star_transform(powerlaw_graph, 3)
        # hub degree may exceed K: strict check must fail, lax returns it
        max_degree = verify_degree_bound(result, strict=False)
        assert max_degree > 3
        with pytest.raises(AssertionError):
            verify_degree_bound(result, strict=True)

    def test_family_members(self, star5_graph):
        result = udt_transform(star5_graph, 3)
        families = family_members(result)
        assert list(families) == [0]
        assert set(families[0]) == {0, 6}


class TestVerifiersCatchViolations:
    def _corrupt(self, result: TransformResult, **overrides) -> TransformResult:
        fields = dict(
            graph=result.graph,
            node_origin=result.node_origin,
            new_edge_mask=result.new_edge_mask,
            num_original_nodes=result.num_original_nodes,
            stats=result.stats,
        )
        fields.update(overrides)
        return TransformResult(**fields)

    def test_wrong_origin_length(self, powerlaw_graph):
        result = udt_transform(powerlaw_graph, 4)
        bad = self._corrupt(result, node_origin=result.node_origin[:-1])
        with pytest.raises(AssertionError, match="node_origin"):
            check_split_transformation(powerlaw_graph, bad)

    def test_non_identity_prefix(self, powerlaw_graph):
        result = udt_transform(powerlaw_graph, 4)
        origin = result.node_origin.copy()
        origin[0] = 1
        with pytest.raises(AssertionError, match="map to themselves"):
            check_split_transformation(powerlaw_graph, self._corrupt(result, node_origin=origin))

    def test_mask_flip_detected(self, star5_graph):
        """Marking an original edge as new makes the family lose coverage."""
        result = udt_transform(star5_graph, 3)
        mask = result.new_edge_mask.copy()
        mask[np.flatnonzero(~mask)[0]] = True
        with pytest.raises(AssertionError, match="cover"):
            check_split_transformation(star5_graph, self._corrupt(result, new_edge_mask=mask))

    def test_distance_check_catches_nonzero_dumb_weight(self, powerlaw_graph):
        """A transform with weight-1 'dumb' edges changes distances."""
        result = udt_transform(powerlaw_graph, 4)
        weights = result.graph.weights.copy()
        weights[result.new_edge_mask] = 1.0
        bad_graph = result.graph.with_weights(weights)
        bad = self._corrupt(result, graph=bad_graph)
        with pytest.raises(AssertionError, match="distances"):
            verify_distance_preservation(powerlaw_graph, bad, num_sources=4)

    def test_path_check_catches_dropped_edges(self, star5_graph):
        result = udt_transform(star5_graph, 3)
        truncated = from_edge_list([(0, 1, 1.0)], num_nodes=result.graph.num_nodes)
        bad = self._corrupt(result, graph=truncated)
        with pytest.raises(AssertionError, match="reachability"):
            verify_path_preservation(star5_graph, bad, num_sources=2, seed=0)


class TestEmptyAndTrivial:
    def test_empty_graph(self):
        g = from_edge_list([], num_nodes=0)
        result = udt_transform(g, 4)
        verify_path_preservation(g, result)
        verify_distance_preservation(g, result)

    def test_single_node(self):
        g = from_edge_list([], num_nodes=1)
        result = udt_transform(g, 4)
        check_split_transformation(g, result)


@given(
    seed=st.integers(min_value=0, max_value=30),
    k=st.integers(min_value=2, max_value=8),
)
@settings(max_examples=25, deadline=None)
def test_theorem1_corollary2_random(seed, k):
    """Property: Corollary 2 — UDT with ZERO dumb weights preserves
    all sampled pairwise distances on arbitrary weighted graphs."""
    graph = rmat(50, 400, seed=seed, weight_range=(1, 9))
    result = udt_transform(graph, k, dumb_weight=DumbWeight.ZERO)
    verify_distance_preservation(graph, result, num_sources=2, seed=seed)


@given(
    seed=st.integers(min_value=0, max_value=30),
    k=st.integers(min_value=2, max_value=8),
)
@settings(max_examples=25, deadline=None)
def test_corollary3_random(seed, k):
    """Property: Corollary 3 — INFINITY dumb weights preserve widths."""
    graph = rmat(50, 400, seed=seed, weight_range=(1, 9))
    result = udt_transform(graph, k, dumb_weight=DumbWeight.INFINITY)
    verify_widest_path_preservation(graph, result, num_sources=2, seed=seed)
