"""Tests for path reconstruction and subgraph extraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import sssp
from repro.algorithms.paths import (
    path_length,
    reconstruct_path,
    shortest_path_tree_edges,
)
from repro.algorithms.reference import reference_sssp
from repro.errors import EngineError, GraphError
from repro.graph.builder import from_edge_list
from repro.graph.generators import path_graph, rmat, star
from repro.graph.subgraph import ego_network, induced_subgraph, traversal_subgraph


class TestReconstructPath:
    def test_figure2_path(self, figure2_graph):
        dist = reference_sssp(figure2_graph, 0)
        path = reconstruct_path(figure2_graph, dist, 0, 3)
        assert path[0] == 0 and path[-1] == 3
        assert path_length(figure2_graph, path) == dist[3] == 3.0
        assert path == [0, 1, 3]

    def test_trivial_path(self, figure2_graph):
        dist = reference_sssp(figure2_graph, 0)
        assert reconstruct_path(figure2_graph, dist, 0, 0) == [0]

    def test_unreachable_target(self):
        g = from_edge_list([(0, 1, 1.0)], num_nodes=3)
        dist = reference_sssp(g, 0)
        with pytest.raises(EngineError, match="unreachable"):
            reconstruct_path(g, dist, 0, 2)

    def test_wrong_source_array(self, figure2_graph):
        dist = reference_sssp(figure2_graph, 1)
        with pytest.raises(EngineError, match="source"):
            reconstruct_path(figure2_graph, dist, 0, 3)

    def test_out_of_range(self, figure2_graph):
        dist = reference_sssp(figure2_graph, 0)
        with pytest.raises(EngineError):
            reconstruct_path(figure2_graph, dist, 0, 99)

    def test_path_length_validates_edges(self, figure2_graph):
        with pytest.raises(EngineError, match="not an edge"):
            path_length(figure2_graph, [0, 3])

    def test_deterministic_tie_break(self):
        # two equal-cost routes 0->1->3 and 0->2->3: pick min id pred
        g = from_edge_list([(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)])
        dist = reference_sssp(g, 0)
        assert reconstruct_path(g, dist, 0, 3) == [0, 1, 3]


class TestShortestPathTree:
    def test_tight_edges_on_figure2(self, figure2_graph):
        dist = reference_sssp(figure2_graph, 0)
        tight = shortest_path_tree_edges(figure2_graph, dist)
        src = figure2_graph.edge_sources()
        # (1,2) has weight 4 but dist[2]=2: not tight
        for slot in range(figure2_graph.num_edges):
            u, v = int(src[slot]), int(figure2_graph.targets[slot])
            w = float(figure2_graph.weights[slot])
            assert tight[slot] == (dist[u] + w == dist[v])

    def test_every_reached_node_has_tight_in_edge(self, powerlaw_graph, hub_source):
        dist = reference_sssp(powerlaw_graph, hub_source)
        tight = shortest_path_tree_edges(powerlaw_graph, dist)
        dst = powerlaw_graph.targets
        covered = set(dst[tight].tolist())
        reached = set(np.flatnonzero(np.isfinite(dist)).tolist()) - {hub_source}
        assert reached <= covered


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 3), (3, 0)])
        sub = induced_subgraph(g, [0, 1, 2])
        assert sub.graph.num_nodes == 3
        assert sorted(sub.graph.iter_edges()) == [(0, 1), (1, 2)]

    def test_id_mapping(self):
        g = from_edge_list([(2, 5, 7.0)], num_nodes=6)
        sub = induced_subgraph(g, [5, 2])
        assert sub.nodes.tolist() == [2, 5]
        assert sub.local_id(5) == 1
        assert sub.graph.has_edge(0, 1)
        assert sub.graph.weights[0] == 7.0

    def test_missing_node_lookup(self):
        g = from_edge_list([(0, 1)])
        with pytest.raises(GraphError):
            induced_subgraph(g, [0]).local_id(1)

    def test_out_of_range_nodes(self):
        g = from_edge_list([(0, 1)])
        with pytest.raises(GraphError):
            induced_subgraph(g, [5])

    def test_lift_values(self):
        g = from_edge_list([(0, 1), (2, 3)])
        sub = induced_subgraph(g, [1, 3])
        lifted = sub.lift_values(np.array([10.0, 30.0]), g.num_nodes)
        assert lifted[1] == 10.0 and lifted[3] == 30.0
        assert np.isnan(lifted[0])


class TestEgoNetwork:
    def test_radius_zero(self, powerlaw_graph):
        ego = ego_network(powerlaw_graph, 5, radius=0)
        assert ego.nodes.tolist() == [5]

    def test_star_center(self):
        g = star(6)
        ego = ego_network(g, 0, radius=1)
        assert len(ego.nodes) == 7

    def test_star_leaf_directed_vs_undirected(self):
        g = star(6)
        directed = ego_network(g, 1, radius=1)
        assert directed.nodes.tolist() == [1]  # leaves have no out-edges
        undirected = ego_network(g, 1, radius=1, undirected=True)
        assert 0 in undirected.nodes.tolist()

    def test_radius_grows_monotonically(self, powerlaw_symmetric, hub_source):
        sizes = [
            len(ego_network(powerlaw_symmetric, hub_source, radius=r).nodes)
            for r in (0, 1, 2)
        ]
        assert sizes[0] < sizes[1] <= sizes[2]

    def test_bad_arguments(self, powerlaw_graph):
        with pytest.raises(GraphError):
            ego_network(powerlaw_graph, -1)
        with pytest.raises(GraphError):
            ego_network(powerlaw_graph, 0, radius=-2)


class TestTraversalSubgraph:
    def test_reached_region(self):
        g = from_edge_list([(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)], num_nodes=5)
        dist = reference_sssp(g, 0)
        sub, local_dist = traversal_subgraph(g, dist)
        assert sub.nodes.tolist() == [0, 1, 2]
        assert local_dist.tolist() == [0.0, 1.0, 2.0]

    def test_sssp_on_subgraph_consistent(self, powerlaw_graph, hub_source):
        dist = sssp(powerlaw_graph, hub_source).values
        sub, local_dist = traversal_subgraph(powerlaw_graph, dist)
        re_run = reference_sssp(sub.graph, sub.local_id(hub_source))
        assert np.allclose(re_run, local_dist)


@given(seed=st.integers(min_value=0, max_value=40))
@settings(max_examples=25, deadline=None)
def test_reconstructed_paths_are_optimal(seed):
    """Property: every reconstructed path's weight equals the distance."""
    graph = rmat(40, 300, seed=seed, weight_range=(1, 9))
    source = int(np.argmax(graph.out_degrees()))
    dist = reference_sssp(graph, source)
    reverse = graph.reverse()
    reached = np.flatnonzero(np.isfinite(dist))
    for target in reached[:: max(1, len(reached) // 8)]:
        path = reconstruct_path(graph, dist, source, int(target), reverse=reverse)
        assert path[0] == source and path[-1] == target
        assert path_length(graph, path) == pytest.approx(dist[target])
