"""Unit + property tests for the virtual node array (Figures 10 & 12)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.virtual import VirtualGraph, virtual_transform
from repro.errors import TransformError
from repro.graph.builder import from_edge_list
from repro.graph.generators import rmat, star


class TestFigure10Example:
    """The paper's Figure 10: node v2 with 6 edges, K=3 -> two virtual nodes."""

    def setup_method(self):
        # one node (id 0) with 6 out-edges to nodes 1..6
        self.graph = from_edge_list([(0, t) for t in range(1, 7)])
        self.virtual = virtual_transform(self.graph, 3)

    def test_two_virtual_nodes(self):
        # node 0 -> 2 virtual nodes; sinks contribute none
        assert self.virtual.num_virtual_nodes == 2

    def test_mapping(self):
        assert self.virtual.physical_ids.tolist() == [0, 0]

    def test_edge_split(self):
        assert self.virtual.edge_indices(0).tolist() == [0, 1, 2]
        assert self.virtual.edge_indices(1).tolist() == [3, 4, 5]

    def test_coalesced_split(self):
        """Figure 12: second virtual node gets slots 1, 3, 5."""
        coalesced = virtual_transform(self.graph, 3, coalesced=True)
        assert coalesced.edge_indices(0).tolist() == [0, 2, 4]
        assert coalesced.edge_indices(1).tolist() == [1, 3, 5]


class TestConstruction:
    def test_bad_bound(self, powerlaw_graph):
        with pytest.raises(TransformError):
            virtual_transform(powerlaw_graph, 0)

    def test_k1_every_edge_its_own_virtual_node(self):
        g = star(4)
        v = virtual_transform(g, 1)
        assert v.num_virtual_nodes == 4
        assert v.max_virtual_degree() == 1

    def test_sinks_have_no_virtual_nodes(self):
        g = star(3)  # leaves have no out-edges
        v = virtual_transform(g, 2)
        assert v.num_virtual_nodes == 2  # ceil(3/2) for the hub only

    def test_physical_graph_untouched(self, powerlaw_graph):
        before = powerlaw_graph.targets.copy()
        virtual_transform(powerlaw_graph, 4)
        assert np.array_equal(powerlaw_graph.targets, before)

    def test_degree_bound_respected(self, powerlaw_graph):
        for k in (1, 3, 10):
            for coalesced in (False, True):
                v = virtual_transform(powerlaw_graph, k, coalesced=coalesced)
                assert v.max_virtual_degree() <= k

    def test_family_rank_and_size(self):
        g = from_edge_list([(0, t) for t in range(1, 8)])  # degree 7
        v = virtual_transform(g, 3)
        assert v.family_rank.tolist() == [0, 1, 2]
        assert v.family_size.tolist() == [3, 3, 3]

    def test_repr(self, powerlaw_graph):
        v = virtual_transform(powerlaw_graph, 4, coalesced=True)
        assert "coalesced" in repr(v)
        assert "K=4" in repr(v)


class TestEdgeCoverage:
    @pytest.mark.parametrize("coalesced", [False, True])
    @pytest.mark.parametrize("k", [1, 2, 5, 13])
    def test_every_slot_exactly_once(self, powerlaw_graph, k, coalesced):
        """Both layouts partition the edge array exactly."""
        v = virtual_transform(powerlaw_graph, k, coalesced=coalesced)
        idx, counts = v.gather_edge_indices(np.arange(v.num_virtual_nodes))
        assert counts.sum() == powerlaw_graph.num_edges
        assert np.array_equal(np.sort(idx), np.arange(powerlaw_graph.num_edges))

    def test_slots_stay_within_owner(self, powerlaw_graph):
        """Each virtual node's slots lie inside its physical node's range."""
        v = virtual_transform(powerlaw_graph, 4, coalesced=True)
        offsets = powerlaw_graph.offsets
        for vid in range(0, v.num_virtual_nodes, 17):
            phys = int(v.physical_ids[vid])
            slots = v.edge_indices(vid)
            assert np.all(slots >= offsets[phys])
            assert np.all(slots < offsets[phys + 1])


class TestFrontierExpansion:
    def test_virtual_nodes_of(self):
        g = from_edge_list([(0, t) for t in range(1, 8)] + [(1, 2)])
        v = virtual_transform(g, 3)
        # node 0 has 3 virtual nodes (7 edges / 3), node 1 has 1
        assert v.virtual_nodes_of(np.array([0])).tolist() == [0, 1, 2]
        assert v.virtual_nodes_of(np.array([1])).tolist() == [3]
        assert v.virtual_nodes_of(np.array([0, 1])).tolist() == [0, 1, 2, 3]

    def test_sink_expansion_is_empty(self):
        g = star(3)
        v = virtual_transform(g, 2)
        assert len(v.virtual_nodes_of(np.array([1]))) == 0


class TestSpaceAccounting:
    def test_vna_words(self):
        g = from_edge_list([(0, t) for t in range(1, 7)])
        v = virtual_transform(g, 3)
        assert v.virtual_node_array_words() == 4  # 2 entries x 2 words

    def test_space_ratio_decreases_in_k(self, powerlaw_graph):
        ratios = [
            virtual_transform(powerlaw_graph, k).space_ratio()
            for k in (2, 4, 8, 32)
        ]
        assert all(a > b for a, b in zip(ratios, ratios[1:]))
        assert all(r > 1.0 for r in ratios)

    def test_space_ratio_k4_band(self):
        """Table 6: K=4 costs ~145-150% on power-law graphs."""
        g = rmat(2000, 30000, seed=5)
        ratio = virtual_transform(g, 4).space_ratio()
        assert 1.35 < ratio < 1.55


@given(
    degrees=st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=30),
    k=st.integers(min_value=1, max_value=9),
    coalesced=st.booleans(),
)
@settings(max_examples=120, deadline=None)
def test_layout_partitions_arbitrary_degree_sequences(degrees, k, coalesced):
    """Property: for any degree sequence, layout partitions edge slots
    exactly and respects the bound (Figures 10/12 invariants)."""
    edges = []
    n = len(degrees)
    for node, d in enumerate(degrees):
        edges.extend((node, (node + j) % max(n, 2)) for j in range(d))
    if not edges:
        return
    g = from_edge_list(edges, num_nodes=max(n, 2))
    # from_edge_list targets may include node n-1+... ensure within range
    v = virtual_transform(g, k, coalesced=coalesced)
    assert v.max_virtual_degree() <= k
    idx, counts = v.gather_edge_indices(np.arange(v.num_virtual_nodes))
    assert np.array_equal(np.sort(idx), np.arange(g.num_edges))
    # per-family virtual counts: ceil(d/K)
    expected = sum(-(-d // k) for d in g.out_degrees())
    assert v.num_virtual_nodes == expected
