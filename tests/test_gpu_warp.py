"""Unit tests for the warp-level SIMD accounting."""

import numpy as np
import pytest

from repro.gpu.warp import WarpStats, WorkTrace, warp_statistics


def trace(counts, starts=None, strides=None):
    counts = np.asarray(counts, dtype=np.int64)
    if starts is None:
        starts = np.cumsum(np.concatenate([[0], counts[:-1]])) if len(counts) else counts
    starts = np.asarray(starts, dtype=np.int64)
    if strides is None:
        strides = np.ones(len(counts), dtype=np.int64)
    return WorkTrace(counts, starts, np.asarray(strides, dtype=np.int64))


class TestWorkTrace:
    def test_parallel_arrays_enforced(self):
        with pytest.raises(ValueError):
            WorkTrace(np.array([1]), np.array([0, 1]), np.array([1]))

    def test_total_edges(self):
        assert trace([3, 0, 2]).total_edges == 5

    def test_uniform_constructor(self):
        t = WorkTrace.uniform(4, 3)
        assert t.counts.tolist() == [3, 3, 3, 3]
        assert t.starts.tolist() == [0, 3, 6, 9]

    def test_empty(self):
        t = trace([])
        stats = warp_statistics(t)
        assert stats.num_warps == 0
        assert stats.warp_efficiency() == 1.0


class TestWarpGrouping:
    def test_single_full_warp(self):
        stats = warp_statistics(trace([1] * 32))
        assert stats.num_warps == 1
        assert stats.steps.tolist() == [1]
        assert stats.edges.tolist() == [32]

    def test_partial_warp(self):
        stats = warp_statistics(trace([1] * 40))
        assert stats.num_warps == 2
        assert stats.launched_lanes.tolist() == [32, 8]

    def test_steps_are_max_lane(self):
        """SIMD lock-step: the warp advances at its slowest lane's pace."""
        counts = [1] * 31 + [100]
        stats = warp_statistics(trace(counts))
        assert stats.steps.tolist() == [100]
        assert stats.edges.tolist() == [131]

    def test_active_lanes(self):
        stats = warp_statistics(trace([0, 2, 0, 3]))
        assert stats.active_lanes.tolist() == [2]


class TestWarpEfficiency:
    def test_uniform_is_perfect(self):
        stats = warp_statistics(trace([4] * 32))
        assert stats.warp_efficiency() == pytest.approx(1.0)

    def test_hub_destroys_efficiency(self):
        """One 1000-edge lane among 31 single-edge lanes: §2.3's problem."""
        stats = warp_statistics(trace([1] * 31 + [1000]))
        assert stats.warp_efficiency() < 0.05

    def test_no_work_reports_one(self):
        stats = warp_statistics(trace([0, 0]))
        assert stats.warp_efficiency() == 1.0

    def test_matches_formula(self):
        counts = [2, 8, 1, 5]
        stats = warp_statistics(trace(counts))
        assert stats.warp_efficiency() == pytest.approx(sum(counts) / (8 * 32))


class TestGapModel:
    def test_adjacent_lanes_fully_coalesced(self):
        # 32 lanes, one slot each, consecutive: gap = word size
        stats = warp_statistics(trace([1] * 32, starts=list(range(32))))
        assert stats.gap_bytes[0] == pytest.approx(8.0)

    def test_strided_lanes_partially_coalesced(self):
        # starts K=10 apart: gap = 80 bytes
        starts = [i * 10 for i in range(32)]
        stats = warp_statistics(trace([10] * 32, starts=starts))
        assert stats.gap_bytes[0] == pytest.approx(80.0)

    def test_far_lanes_clip_at_transaction(self):
        starts = [i * 1000 for i in range(32)]
        stats = warp_statistics(trace([5] * 32, starts=starts))
        assert stats.gap_bytes[0] == pytest.approx(128.0)

    def test_single_active_lane_uncoalesced(self):
        stats = warp_statistics(trace([7] + [0] * 31, starts=[0] + [0] * 31))
        assert stats.gap_bytes[0] == pytest.approx(128.0)

    def test_inactive_lanes_ignored_in_gap(self):
        counts = [1, 0] * 16
        starts = list(range(32))
        stats = warp_statistics(trace(counts, starts=starts))
        # no consecutive ACTIVE pair -> default gap
        assert stats.gap_bytes[0] == pytest.approx(128.0)

    def test_coalesced_virtual_layout_beats_default(self):
        """The whole point of Figure 12: siblings' starts adjacent."""
        coalesced = warp_statistics(trace([10] * 32, starts=list(range(32))))
        default = warp_statistics(
            trace([10] * 32, starts=[i * 10 for i in range(32)])
        )
        assert coalesced.gap_bytes[0] < default.gap_bytes[0]
