"""Tests for the top-level convenience facade and K selection."""

import numpy as np
import pytest

import repro
from repro.algorithms.reference import reference_sssp
from repro.core.selection import choose_physical_k, choose_virtual_k
from repro.graph.generators import rmat, star


class TestKSelection:
    def test_virtual_is_the_papers_constant(self):
        assert choose_virtual_k(rmat(50, 200, seed=1)) == 10

    def test_physical_floor(self):
        assert choose_physical_k(star(500)) == 8

    def test_physical_grows_with_dmax(self):
        ks = [choose_physical_k(star(d)) for d in (500, 2_000, 20_000, 300_000)]
        assert ks == sorted(ks)
        assert ks[0] == 8 and ks[-1] > ks[0]

    def test_physical_clamped(self):
        assert choose_physical_k(star(10_000_000)) <= 512

    def test_matches_dataset_spec_regime(self):
        """The heuristic lands in the same band as the tuned Table 3
        stand-in bounds (within a factor of two)."""
        from repro.graph.datasets import DATASETS, load_dataset

        for name in ("pokec", "livejournal", "orkut", "sinaweibo"):
            graph = load_dataset(name, scale=0.5)
            chosen = choose_physical_k(graph)
            tuned = DATASETS[name].k_udt
            assert tuned / 2 <= chosen <= tuned * 2, (name, chosen, tuned)


class TestFacade:
    def test_version(self):
        assert repro.__version__

    def test_tigr_auto_k(self):
        graph = repro.rmat(100, 900, seed=2, weight_range=(1, 5))
        view = repro.tigr(graph)
        assert view.degree_bound == 10
        assert view.coalesced

    def test_run_on_tigr_view(self):
        graph = repro.rmat(150, 1200, seed=3, weight_range=(1, 8))
        source = int(np.argmax(graph.out_degrees()))
        result = repro.run("sssp", repro.tigr(graph), source)
        assert np.allclose(result.values, reference_sssp(graph, source))
        assert result.metrics is not None
        assert result.metrics.total_time_ms > 0

    def test_run_without_simulation(self):
        graph = repro.rmat(100, 600, seed=4, weight_range=(1, 5))
        result = repro.run("sssp", graph, 0, simulate=False)
        assert result.metrics is None

    def test_tigr_physical_roundtrip(self):
        graph = repro.rmat(150, 1500, seed=5, weight_range=(1, 8))
        source = int(np.argmax(graph.out_degrees()))
        physical = repro.tigr_physical(graph, algorithm="sssp")
        result = repro.run("sssp", physical.graph, source, simulate=False)
        assert np.allclose(
            physical.read_values(result.values), reference_sssp(graph, source)
        )

    def test_run_all_algorithms(self):
        graph = repro.rmat(80, 600, seed=6, weight_range=(1, 5))
        source = 0
        for algorithm in ("bfs", "sssp", "sswp", "bc", "pr"):
            result = repro.run(algorithm, repro.tigr(graph), source)
            assert len(result.values) == graph.num_nodes

    def test_readme_snippet_shape(self):
        graph = repro.load_dataset("pokec", scale=0.1)
        result = repro.run("sssp", repro.tigr(graph), source=0)
        assert result.metrics.total_time_ms >= 0
