"""Smoke tests: every example script runs to completion.

The examples are the README's contract with adopters; these tests run
each as a subprocess (fresh interpreter, like a user would) and check
for a clean exit and the expected headline output.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

CASES = {
    "quickstart.py": "speedup",
    "social_influencers.py": "top influencers",
    "warp_efficiency_study.py": "Takeaway",
    "transform_playground.py": "Corollary 3 holds",
    "memory_pressure.py": "OOM",
    "multi_gpu_orthogonality.py": "Orthogonal",
    "route_planner.py": "shortest-path DAG",
    "interop_workflow.py": "cross-check",
}


@pytest.mark.parametrize("script,marker", sorted(CASES.items()))
def test_example_runs(script, marker):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert marker in proc.stdout, f"{script} output missing {marker!r}"
