"""Edge cases across modules that the focused suites don't reach."""

import numpy as np
import pytest

from repro.bench.report import format_table
from repro.core.types import TransformResult, TransformStats
from repro.core.udt import udt_transform
from repro.graph.builder import from_edge_list
from repro.graph.csr import CSRGraph
from repro.graph.stats import estimate_diameter
from repro.graph.generators import star


class TestTransformResultCorners:
    def test_no_split_families_empty(self, regular_graph):
        result = udt_transform(regular_graph, 100)
        assert result.families() == {}
        assert result.stats.num_families == 0
        assert result.stats.max_family_hops == 0

    def test_space_ratio_identity_when_untouched(self, regular_graph):
        result = udt_transform(regular_graph, 100)
        ratio = result.stats.space_ratio(regular_graph, result.graph)
        assert ratio == pytest.approx(1.0)

    def test_space_ratio_grows_with_splits(self):
        graph = star(100)
        result = udt_transform(graph, 4)
        assert result.stats.space_ratio(graph, result.graph) > 1.2

    def test_stats_fields_consistent(self):
        graph = star(50)
        result = udt_transform(graph, 5)
        stats = result.stats
        assert stats.degree_bound == 5
        assert stats.new_nodes == result.graph.num_nodes - graph.num_nodes
        assert stats.new_edges == int(result.new_edge_mask.sum())
        assert stats.max_degree_after == result.graph.max_out_degree()


class TestEmptyGraphCorners:
    def empty(self):
        return from_edge_list([], num_nodes=0)

    def test_reverse_of_empty(self):
        g = self.empty()
        assert g.reverse().num_nodes == 0

    def test_iter_edges_empty(self):
        assert list(self.empty().iter_edges()) == []

    def test_diameter_of_empty(self):
        assert estimate_diameter(self.empty()) == 0

    def test_nbytes_nonzero_for_offsets(self):
        # even an empty graph stores the length-1 offsets array
        assert self.empty().nbytes() > 0

    def test_udt_on_singleton(self):
        g = from_edge_list([], num_nodes=1)
        result = udt_transform(g, 4)
        assert result.graph.num_nodes == 1


class TestReportFormatting:
    def test_inf_nan_and_huge_cells(self):
        text = format_table([
            {"a": float("inf"), "b": float("nan"), "c": 1.5e7, "d": 1e-5},
        ])
        assert "inf" in text
        assert "-" in text  # NaN renders as a dash
        assert "e+07" in text or "1.5e7" in text.replace(" ", "")

    def test_mixed_missing_columns(self):
        text = format_table([{"a": 1}, {"b": 2}])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "-" in lines[2] and "-" in lines[3]

    def test_non_numeric_cells_pass_through(self):
        text = format_table([{"label": "OOM"}])
        assert "OOM" in text


class TestCSRDegenerate:
    def test_single_self_loop(self):
        g = CSRGraph(np.array([0, 1]), np.array([0]))
        assert g.has_edge(0, 0)
        assert g.in_degrees().tolist() == [1]
        rev = g.reverse()
        assert rev.has_edge(0, 0)

    def test_max_degree_all_isolated(self):
        g = from_edge_list([], num_nodes=5)
        assert g.max_out_degree() == 0
        assert g.edge_sources().tolist() == []
