"""Tests for ``repro.analyze.callgraph``: module/import resolution,
method vs function lookup, type-token inference, and async-ness
propagation — the substrate the concurrency rule pack stands on."""

import textwrap

from repro.analyze.astutils import load_sources, module_name_for
from repro.analyze.callgraph import CallGraph


def write(tmp_path, name, body):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body))
    return str(path)


def calls_of(graph, qualname):
    return {site.target for site in graph.functions[qualname].calls}


# ----------------------------------------------------------------------
# Module naming
# ----------------------------------------------------------------------
class TestModuleNames:
    def test_package_walkup(self, tmp_path):
        write(tmp_path, "pkg/__init__.py", "")
        write(tmp_path, "pkg/sub/__init__.py", "")
        path = write(tmp_path, "pkg/sub/mod.py", "x = 1\n")
        assert module_name_for(path) == "pkg.sub.mod"

    def test_init_file_is_the_package(self, tmp_path):
        write(tmp_path, "pkg/__init__.py", "")
        path = str(tmp_path / "pkg" / "__init__.py")
        assert module_name_for(path) == "pkg"

    def test_loose_file_gets_stem(self, tmp_path):
        path = write(tmp_path, "script.py", "x = 1\n")
        assert module_name_for(path) == "script"


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------
class TestResolution:
    def test_module_functions_and_aliased_imports(self, tmp_path):
        write(tmp_path, "pkg/__init__.py", "")
        write(
            tmp_path,
            "pkg/util.py",
            """
            def helper():
                return 1
            """,
        )
        write(
            tmp_path,
            "pkg/app.py",
            """
            from pkg.util import helper as h
            from pkg import util

            def local():
                return h()

            def dotted():
                return util.helper()
            """,
        )
        graph = CallGraph.build(load_sources([str(tmp_path / "pkg")]))
        assert calls_of(graph, "pkg.app.local") == {"pkg.util.helper"}
        assert calls_of(graph, "pkg.app.dotted") == {"pkg.util.helper"}

    def test_methods_vs_functions(self, tmp_path):
        path = write(
            tmp_path,
            "mod.py",
            """
            def free():
                return 1

            class Box:
                def __init__(self):
                    self.value = free()

                def get(self):
                    return self.helper()

                def helper(self):
                    return self.value

            def use():
                box = Box()
                return box.get()
            """,
        )
        graph = CallGraph.build(load_sources([path]))
        assert calls_of(graph, "mod.Box.__init__") == {"mod.free"}
        assert calls_of(graph, "mod.Box.get") == {"mod.Box.helper"}
        # Box() resolves to the constructor; box.get() via the binding's
        # inferred type
        assert calls_of(graph, "mod.use") == {
            "mod.Box.__init__",
            "mod.Box.get",
        }

    def test_attribute_and_param_type_tokens(self, tmp_path):
        path = write(
            tmp_path,
            "mod.py",
            """
            import queue
            import threading

            class Service:
                def __init__(self):
                    self._queue = queue.Queue(maxsize=2)
                    self._lock = threading.Lock()

                def push(self, item):
                    self._queue.put(item)

            def poke(service: Service):
                service.push(1)
            """,
        )
        graph = CallGraph.build(load_sources([path]))
        info = graph.classes["mod.Service"]
        assert info.attr_types["_queue"] == "queue.Queue"
        assert info.attr_types["_lock"] == "threading.Lock"
        assert "queue.Queue.put" in calls_of(graph, "mod.Service.push")
        assert calls_of(graph, "mod.poke") == {"mod.Service.push"}

    def test_string_and_optional_annotations_unwrap(self, tmp_path):
        path = write(
            tmp_path,
            "mod.py",
            """
            import queue
            from typing import Optional

            class Holder:
                def __init__(self):
                    self._q: "queue.Queue[int]" = queue.Queue()
                    self._maybe: Optional[queue.Queue] = None

                def drain(self):
                    self._q.get()
                    if self._maybe is not None:
                        self._maybe.get()
            """,
        )
        graph = CallGraph.build(load_sources([path]))
        info = graph.classes["mod.Holder"]
        assert info.attr_types["_q"] == "queue.Queue"
        assert info.attr_types["_maybe"] == "queue.Queue"
        assert calls_of(graph, "mod.Holder.drain") >= {"queue.Queue.get"}

    def test_nested_defs_and_lambda_exclusion(self, tmp_path):
        path = write(
            tmp_path,
            "mod.py",
            """
            import time

            def outer():
                def inner():
                    time.sleep(1)
                run = lambda: time.sleep(2)
                inner()
                return run
            """,
        )
        graph = CallGraph.build(load_sources([path]))
        # the lambda body's sleep belongs to nobody; inner's belongs
        # to inner, and outer's only edge is to inner
        assert calls_of(graph, "mod.outer") == {
            "mod.outer.<locals>.inner"
        }
        assert calls_of(graph, "mod.outer.<locals>.inner") == {
            "time.sleep"
        }


# ----------------------------------------------------------------------
# Async-ness propagation
# ----------------------------------------------------------------------
class TestAsyncPropagation:
    def test_sync_chain_from_async_root(self, tmp_path):
        path = write(
            tmp_path,
            "mod.py",
            """
            def leaf():
                return 1

            def middle():
                return leaf()

            async def root():
                return middle()
            """,
        )
        graph = CallGraph.build(load_sources([path]))
        paths = graph.async_call_paths()
        assert paths["mod.middle"] == ("mod.root", "mod.middle")
        assert paths["mod.leaf"] == ("mod.root", "mod.middle", "mod.leaf")

    def test_async_callee_is_not_descended_into(self, tmp_path):
        path = write(
            tmp_path,
            "mod.py",
            """
            def helper():
                return 1

            async def sub():
                return helper()

            async def root():
                await sub()
            """,
        )
        graph = CallGraph.build(load_sources([path]))
        paths = graph.async_call_paths()
        # helper is reached through sub's own root, not through root
        assert paths["mod.helper"] == ("mod.sub", "mod.helper")

    def test_cycles_terminate(self, tmp_path):
        path = write(
            tmp_path,
            "mod.py",
            """
            def ping():
                return pong()

            def pong():
                return ping()

            async def root():
                return ping()
            """,
        )
        graph = CallGraph.build(load_sources([path]))
        paths = graph.async_call_paths()
        assert paths["mod.ping"] == ("mod.root", "mod.ping")
        assert paths["mod.pong"] == ("mod.root", "mod.ping", "mod.pong")

    def test_awaited_flag_and_discarded_flag(self, tmp_path):
        path = write(
            tmp_path,
            "mod.py",
            """
            async def task():
                return 1

            async def root():
                await task()
                task()
            """,
        )
        graph = CallGraph.build(load_sources([path]))
        sites = graph.functions["mod.root"].calls
        flags = {
            (site.awaited, site.discarded)
            for site in sites
            if site.resolved == "mod.task"
        }
        assert flags == {(True, False), (False, True)}
