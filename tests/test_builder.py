"""Unit tests for graph construction helpers."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.builder import (
    deduplicate_edges,
    from_arrays,
    from_edge_list,
    relabel,
    remove_self_loops,
    to_undirected,
)


class TestFromEdgeList:
    def test_unweighted(self):
        g = from_edge_list([(0, 1), (1, 2)])
        assert g.num_nodes == 3
        assert not g.is_weighted

    def test_weighted(self):
        g = from_edge_list([(0, 1, 2.5)])
        assert g.is_weighted
        assert g.weights[0] == 2.5

    def test_empty_with_num_nodes(self):
        g = from_edge_list([], num_nodes=5)
        assert g.num_nodes == 5
        assert g.num_edges == 0

    def test_empty_weighted(self):
        g = from_edge_list([], num_nodes=2, weighted=True)
        assert g.is_weighted

    def test_mixed_arity_rejected(self):
        with pytest.raises(GraphError, match="arity"):
            from_edge_list([(0, 1), (1, 2, 3.0)])

    def test_forced_weighted_flag(self):
        with pytest.raises(GraphError):
            from_edge_list([(0, 1)], weighted=True)

    def test_non_integer_endpoints_rejected(self):
        with pytest.raises(GraphError, match="integers"):
            from_edge_list([(0.5, 1)])

    def test_num_nodes_extends_graph(self):
        g = from_edge_list([(0, 1)], num_nodes=10)
        assert g.num_nodes == 10

    def test_num_nodes_too_small(self):
        with pytest.raises(GraphError, match="too small"):
            from_edge_list([(0, 9)], num_nodes=5)


class TestFromArrays:
    def test_sorts_by_source_stably(self):
        g = from_arrays([2, 0, 2, 0], [1, 1, 0, 2])
        # node 0's edges keep input order (1 then 2), same for node 2
        assert list(g.neighbors(0)) == [1, 2]
        assert list(g.neighbors(2)) == [1, 0]

    def test_weight_alignment_after_sort(self):
        g = from_arrays([1, 0], [0, 1], [10.0, 20.0])
        assert g.edge_weights_of(0)[0] == 20.0
        assert g.edge_weights_of(1)[0] == 10.0

    def test_shape_mismatch(self):
        with pytest.raises(GraphError):
            from_arrays([0, 1], [0])
        with pytest.raises(GraphError, match="parallel"):
            from_arrays([0], [1], [1.0, 2.0])

    def test_negative_endpoint(self):
        with pytest.raises(GraphError, match="non-negative"):
            from_arrays([-1], [0])

    def test_empty(self):
        g = from_arrays([], [])
        assert g.num_nodes == 0


class TestToUndirected:
    def test_both_directions_present(self):
        g = to_undirected(from_edge_list([(0, 1), (1, 2)]))
        for a, b in [(0, 1), (1, 0), (1, 2), (2, 1)]:
            assert g.has_edge(a, b)

    def test_no_duplicate_when_already_symmetric(self):
        g = to_undirected(from_edge_list([(0, 1), (1, 0)]))
        assert g.num_edges == 2

    def test_weights_keep_minimum(self):
        g = to_undirected(from_edge_list([(0, 1, 5.0), (1, 0, 3.0)]))
        assert g.edge_weights_of(0)[0] == 3.0
        assert g.edge_weights_of(1)[0] == 3.0

    def test_in_degree_equals_out_degree(self):
        from repro.graph.generators import rmat

        g = to_undirected(rmat(50, 300, seed=3))
        assert np.array_equal(g.out_degrees(), g.in_degrees())


class TestDeduplicate:
    def test_first_policy(self):
        g = deduplicate_edges(from_arrays([0, 0, 0], [1, 1, 2], [5.0, 9.0, 1.0]))
        assert g.num_edges == 2
        assert g.edge_weights_of(0)[list(g.neighbors(0)).index(1)] == 5.0

    def test_min_policy(self):
        g = deduplicate_edges(
            from_arrays([0, 0], [1, 1], [5.0, 3.0]), keep="min"
        )
        assert g.num_edges == 1
        assert g.weights[0] == 3.0

    def test_max_policy(self):
        g = deduplicate_edges(
            from_arrays([0, 0], [1, 1], [5.0, 3.0]), keep="max"
        )
        assert g.weights[0] == 5.0

    def test_unknown_policy(self):
        with pytest.raises(GraphError, match="keep"):
            deduplicate_edges(from_edge_list([(0, 1)]), keep="median")

    def test_empty_graph_passthrough(self):
        g = from_edge_list([], num_nodes=3)
        assert deduplicate_edges(g) == g

    def test_unweighted_dedup(self):
        g = deduplicate_edges(from_arrays([0, 0, 1], [1, 1, 0]))
        assert g.num_edges == 2


class TestRemoveSelfLoops:
    def test_removes_only_loops(self):
        g = remove_self_loops(from_edge_list([(0, 0), (0, 1), (1, 1)]))
        assert list(g.iter_edges()) == [(0, 1)]

    def test_preserves_weights(self):
        g = remove_self_loops(from_edge_list([(0, 0, 1.0), (0, 1, 2.0)]))
        assert g.weights[0] == 2.0


class TestRelabel:
    def test_permutation_applied(self):
        g = from_edge_list([(0, 1), (1, 2)])
        h = relabel(g, np.array([2, 0, 1]))
        assert sorted(h.iter_edges()) == sorted([(2, 0), (0, 1)])

    def test_wrong_length(self):
        with pytest.raises(GraphError):
            relabel(from_edge_list([(0, 1)]), np.array([0]))

    def test_not_bijection(self):
        with pytest.raises(GraphError, match="bijection"):
            relabel(from_edge_list([(0, 1), (1, 2)]), np.array([0, 0, 1]))

    def test_out_of_range_values(self):
        with pytest.raises(GraphError, match="range"):
            relabel(from_edge_list([(0, 1)]), np.array([0, 5]))
