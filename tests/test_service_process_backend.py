"""Process backend: backend parity, crash recovery, shared disk tier."""

import os

import numpy as np
import pytest

from repro.errors import ServiceError, WorkerLost
from repro.graph.generators import rmat
from repro.service import (
    AnalyticsService,
    GraphCatalog,
    QueryRequest,
    resolve_backend,
)
from repro.service.executor import BACKEND_ENV
from repro.service.workers import (
    CRASH_SOURCE_ENV,
    BatchSpec,
    export_graph,
    spec_nbytes,
)


@pytest.fixture
def graph():
    return rmat(150, 1100, seed=9, weight_range=(1, 8))


def _values_equal(a, b):
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


class TestBackendResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "processes")
        assert resolve_backend("threads") == "threads"

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "processes")
        assert resolve_backend(None) == "processes"
        monkeypatch.delenv(BACKEND_ENV)
        assert resolve_backend(None) == "threads"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ServiceError, match="unknown worker backend"):
            resolve_backend("fibers")

    def test_service_reports_backend(self, graph):
        with AnalyticsService(workers=1, backend="threads") as svc:
            assert svc.backend == "threads"
            assert svc.metrics.backend == "threads"


class TestBackendParity:
    """Identical QueryResult values from both backends, per algorithm."""

    @pytest.mark.parametrize(
        "algorithm,sources",
        [
            ("bfs", (0, 3, 7)),
            ("sssp", (2, 5)),
            ("cc", ()),
            ("pr", ()),
        ],
    )
    def test_values_match_threads(self, graph, algorithm, sources):
        request = QueryRequest(algorithm, "g", sources=sources)
        with AnalyticsService(workers=2, backend="threads") as svc:
            svc.register("g", graph)
            via_threads = svc.run(request)
        with AnalyticsService(workers=2, backend="processes") as svc:
            svc.register("g", graph)
            via_processes = svc.run(request)
        assert via_threads.ok and via_processes.ok
        assert via_threads.transform == via_processes.transform
        assert via_threads.degree_bound == via_processes.degree_bound
        assert _values_equal(via_threads.values, via_processes.values)

    def test_udt_projection_parity(self, graph):
        # UDT results are projected back to original ids worker-side;
        # the reply must already be in the original node space.
        request = QueryRequest.single(
            "sssp", "g", 2, transform="udt", degree_bound=6
        )
        with AnalyticsService(workers=2, backend="threads") as svc:
            svc.register("g", graph)
            via_threads = svc.run(request)
        with AnalyticsService(workers=2, backend="processes") as svc:
            svc.register("g", graph)
            via_processes = svc.run(request)
        assert len(via_processes.value(2)) == graph.num_nodes
        assert np.array_equal(via_threads.value(2), via_processes.value(2))

    def test_batch_stays_intact_across_ipc(self, graph):
        # a coalesced batch crosses as ONE spec: every member shares
        # one plan and lane-parallel traversals still collapse
        requests = [
            QueryRequest.single("bfs", "g", s, request_id=100 + s)
            for s in (0, 1, 2, 0)  # duplicate source: dedup survives IPC
        ]
        with AnalyticsService(workers=2, backend="processes") as svc:
            svc.register("g", graph)
            tickets = svc.submit_batch(requests)
            results = [t.result(60) for t in tickets]
        assert all(r.ok for r in results)
        assert all(r.batched_with == 3 for r in results)
        assert np.array_equal(results[0].value(0), results[3].value(0))
        summary = svc.metrics.summary()
        assert summary["sources_deduped"] == 1
        assert summary["lanes_per_traversal"] == 3.0
        assert summary["traversals_saved"] == 2
        assert summary["ipc_bytes"] > 0

    def test_typed_library_errors_cross_ipc(self, graph):
        # SplitSafetyError is not picklable with its constructor args;
        # the message must still reach the caller verbatim.
        with AnalyticsService(workers=1, backend="processes") as svc:
            svc.register("g", graph)
            result = svc.run(QueryRequest("pr", "g", transform="udt"))
            assert not result.ok and "udt cannot serve pr" in result.error


class TestSharedDiskTier:
    def test_workers_hydrate_from_catalog_spill_dir(self, graph, tmp_path):
        # pre-warm the disk tier from the front-end, then prove the
        # worker served from it: cold query, yet cache_hit
        warm = GraphCatalog(spill_dir=str(tmp_path), write_through=True)
        with AnalyticsService(warm, workers=1, backend="threads") as svc:
            svc.register("g", graph)
            assert svc.run(QueryRequest.single("bfs", "g", 0)).ok

        fresh = GraphCatalog(spill_dir=str(tmp_path))
        with AnalyticsService(fresh, workers=1, backend="processes") as svc:
            svc.register("g", graph)
            result = svc.run(QueryRequest.single("bfs", "g", 0))
            assert result.ok and result.cache_hit
            assert svc.metrics.summary()["hydrate_hits"] >= 1

    def test_graph_export_is_content_addressed(self, graph, tmp_path):
        first = export_graph(graph, str(tmp_path))
        second = export_graph(graph, str(tmp_path))
        assert first == second
        assert len([n for n in os.listdir(tmp_path) if n.endswith(".npz")]) == 1

    def test_spec_accounting_is_positive(self, graph, tmp_path):
        path = export_graph(graph, str(tmp_path))
        from repro.engine.push import EngineOptions

        spec = BatchSpec(
            graph_fingerprint=graph.fingerprint(),
            graph_path=path,
            algorithm="bfs",
            transform="auto",
            degree_bound=0,
            options=EngineOptions(),
            sources=(0, 1),
        )
        assert spec_nbytes(spec) > 0


class TestCrashRecovery:
    def test_crash_degrades_and_service_survives(self, graph, monkeypatch):
        monkeypatch.setenv(CRASH_SOURCE_ENV, "7")
        with AnalyticsService(workers=2, backend="processes") as svc:
            svc.register("g", graph)
            result = svc.run(QueryRequest.single("bfs", "g", 7))
            # typed degradation, not a hang: inline retry produced a
            # correct-but-degraded answer and the pool was replaced
            assert result.ok and result.degraded
            assert svc.metrics.worker_restarts >= 1
            monkeypatch.delenv(CRASH_SOURCE_ENV)
            healthy = svc.run(QueryRequest.single("bfs", "g", 7))
            assert healthy.ok and not healthy.degraded

    def test_crash_without_fallback_fails_typed(self, graph, monkeypatch):
        monkeypatch.setenv(CRASH_SOURCE_ENV, "7")
        with AnalyticsService(
            workers=1, backend="processes", process_fallback=False
        ) as svc:
            svc.register("g", graph)
            result = svc.run(QueryRequest.single("bfs", "g", 7))
            assert not result.ok
            assert "worker lost" in result.error

    def test_worker_lost_is_a_service_error(self):
        error = WorkerLost("worker process died mid-batch", batch_size=3)
        assert isinstance(error, ServiceError)
        assert error.batch_size == 3
        assert "3 request(s) affected" in str(error)
