"""Unit tests for dumb-weight policies and Table 1 closed forms."""

import math

import numpy as np
import pytest

from repro.core.analysis import (
    SplitProperties,
    logarithmic_height_bound,
    predict_properties,
)
from repro.core.weights import DumbWeight
from repro.errors import TransformError


class TestDumbWeight:
    def test_zero_value(self):
        assert DumbWeight.ZERO.value_for_new_edges == 0.0

    def test_infinity_value(self):
        assert DumbWeight.INFINITY.value_for_new_edges == np.inf

    def test_none_has_no_value(self):
        with pytest.raises(ValueError):
            DumbWeight.NONE.value_for_new_edges

    @pytest.mark.parametrize(
        "algorithm,expected",
        [
            ("bfs", DumbWeight.ZERO),
            ("sssp", DumbWeight.ZERO),
            ("bc", DumbWeight.ZERO),
            ("sswp", DumbWeight.INFINITY),
            ("cc", DumbWeight.NONE),
            ("pagerank", DumbWeight.NONE),
            ("pr", DumbWeight.NONE),
            ("SSSP", DumbWeight.ZERO),  # case-insensitive
        ],
    )
    def test_for_algorithm(self, algorithm, expected):
        assert DumbWeight.for_algorithm(algorithm) is expected

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown"):
            DumbWeight.for_algorithm("coloring")


class TestPredictProperties:
    def test_cliq_row(self):
        p = predict_properties("cliq", 100, 10)
        assert p.new_nodes == 9
        assert p.new_edges == 9 * 10
        assert p.new_degree == 10 + 9
        assert p.max_hops == 1

    def test_circ_row(self):
        p = predict_properties("circ", 100, 10)
        assert p.new_nodes == 9
        assert p.new_edges == 10  # full cycle (documented deviation)
        assert p.new_degree == 11
        assert p.max_hops == 9

    def test_star_row(self):
        p = predict_properties("star", 100, 10)
        assert p.new_nodes == 10
        assert p.new_edges == 10
        assert p.new_degree == 10
        assert p.max_hops == 1

    def test_star_degree_dominated_by_hub(self):
        # d=1000, K=10: hub degree 100 > K
        assert predict_properties("star", 1000, 10).new_degree == 100

    def test_udt_row(self):
        p = predict_properties("udt", 100, 10)
        assert p.new_degree == 10
        assert p.new_nodes == math.ceil((100 - 10) / 9)
        assert p.new_edges == p.new_nodes

    def test_invalid_inputs(self):
        with pytest.raises(TransformError):
            predict_properties("cliq", 5, 0)
        with pytest.raises(TransformError, match="does not exceed"):
            predict_properties("cliq", 5, 5)
        with pytest.raises(TransformError, match="unknown topology"):
            predict_properties("ring", 10, 2)

    def test_qualitative_labels(self):
        assert predict_properties("circ", 10, 2).qualitative["value_propagation"] == "slow"
        assert predict_properties("cliq", 10, 2).qualitative["space_cost"] == "high"
        assert predict_properties("star", 10, 2).qualitative["irregularity_reduction"] == "varies"

    def test_height_bound_trivial_cases(self):
        assert logarithmic_height_bound(5, 10) == 0.0
        assert logarithmic_height_bound(5, 1) == 0.0
