"""Catalog property tests: invariants under random op sequences.

Example-based tests pin specific behaviours; these pin the *laws* the
catalog must obey no matter what order operations arrive in, under
both eviction policies:

* ``bytes_in_memory`` always equals the sum of live entries' sizes;
* the byte budget is never exceeded after an operation returns;
* the memory tier never holds duplicate keys, and a key chosen as an
  eviction victim is actually gone when the operation returns;
* GDSF never evicts the (unique) highest-priority resident entry —
  its victim is always a minimum-priority one.

The concurrent variant hammers one catalog from many threads while
observers read its stats, then checks counter conservation: no hit,
miss, build, or build-second is ever lost.  Budget dials match
``test_service_stress.py`` (``REPRO_SOAK_*``); the heavy run carries
the ``soak`` marker.
"""

import os
import random
import threading

import pytest

from repro.core.weights import DumbWeight
from repro.graph.generators import rmat
from repro.service import GdsfPolicy, GraphCatalog

SOAK_THREADS = int(os.environ.get("REPRO_SOAK_THREADS", "4"))
SOAK_REQUESTS = int(os.environ.get("REPRO_SOAK_REQUESTS", "40"))
SOAK_SEED = int(os.environ.get("REPRO_SOAK_SEED", "20180324"))

POLICIES = ("lru", "gdsf")


def build_cells(count):
    """(graph, kind, K, dumb_weight) cells with varied sizes and costs."""
    cells = []
    for i in range(count):
        graph = rmat(60 + 40 * (i % 3), 300 + 200 * i, seed=300 + i)
        kind, k = (
            ("udt", 6) if i % 3 == 0
            else ("virtual+", 8) if i % 3 == 1
            else ("virtual", 12)
        )
        dumb = DumbWeight.ZERO if kind == "udt" else DumbWeight.NONE
        cells.append((graph, kind, k, dumb))
    return cells


def prebuild(cells):
    """key -> (cell, artifact) via a throwaway probe catalog."""
    probe = GraphCatalog()
    built = {}
    for graph, kind, k, dumb in cells:
        artifact = probe.get_or_build(graph, kind, k, dumb_weight=dumb)
        built[artifact.key] = ((graph, kind, k, dumb), artifact)
    return built


def spy_on_victims(catalog):
    """Record every eviction decision (and, for GDSF, the price board).

    Wraps the live policy's ``select_victim``; each pick appends
    ``(victim_key, priorities_or_None)`` where priorities snapshot
    every resident key's priority *at selection time* (before
    ``record_evict`` moves the clock).
    """
    policy = catalog.eviction_policy()
    original = policy.select_victim
    picks = []

    def spying(entries):
        victim = original(entries)
        if isinstance(policy, GdsfPolicy):
            picks.append(
                (victim, {key: policy.priority_of(key) for key in entries})
            )
        else:
            picks.append((victim, None))
        return victim

    policy.select_victim = spying
    return picks


class TestRandomOpSequences:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("seed", (1, 7, 2018))
    def test_invariants_hold_after_every_op(self, policy, seed, tmp_path):
        rng = random.Random(seed)
        artifacts = prebuild(build_cells(6))
        keys = list(artifacts)
        budget = int(
            sum(artifact.nbytes() for _, artifact in artifacts.values()) * 0.6
        )
        max_entries = 4
        catalog = GraphCatalog(
            memory_budget_bytes=budget,
            spill_dir=str(tmp_path),
            max_entries=max_entries,
            policy=policy,
        )
        picks = spy_on_victims(catalog)

        for _ in range(150):
            del picks[:]
            key = rng.choice(keys)
            (graph, kind, k, dumb), artifact = artifacts[key]
            roll = rng.random()
            if roll < 0.45:
                catalog.get_or_build(graph, kind, k, dumb_weight=dumb)
            elif roll < 0.70:
                catalog.put(key, artifact)
            elif roll < 0.90:
                catalog.hydrate(key)
            elif roll < 0.97:
                # repeated access: drives frequency (GDSF) / recency (LRU).
                # A fresh insert can be its own min-priority victim and
                # return via the disk tier on the second call, so only
                # the last call's eviction decisions are judged below.
                catalog.get_or_build(graph, kind, k, dumb_weight=dumb)
                del picks[:]
                catalog.get_or_build(graph, kind, k, dumb_weight=dumb)
            else:
                catalog.clear()

            resident = catalog.keys()
            # no duplicate keys, count cap respected
            assert len(resident) == len(set(resident))
            assert len(resident) <= max_entries
            # exact byte accounting against the live entries
            live_bytes = 0
            for resident_key in resident:
                entry = catalog.peek(resident_key)
                assert entry is not None
                live_bytes += entry.nbytes()
            assert catalog.stats.bytes_in_memory == live_bytes
            assert catalog.stats.bytes_in_memory <= budget
            # every victim this op chose is really gone...
            for victim, priorities in picks:
                assert victim not in resident
                if priorities is None or len(priorities) < 2:
                    continue
                # ...and GDSF only ever sacrifices a minimum-priority
                # entry — never the (unique) highest-priority one.
                victim_priority = priorities[victim]
                assert victim_priority == min(priorities.values())
                top = max(priorities.values())
                if victim_priority != top:
                    best = max(priorities, key=priorities.get)
                    assert victim != best

    @pytest.mark.parametrize("policy", POLICIES)
    def test_stats_conserved_single_threaded(self, policy, tmp_path):
        artifacts = prebuild(build_cells(4))
        catalog = GraphCatalog(
            memory_budget_bytes=64 * 1024 * 1024,
            spill_dir=str(tmp_path),
            policy=policy,
        )
        rng = random.Random(99)
        lookups = 0
        for _ in range(60):
            (graph, kind, k, dumb), _ = artifacts[rng.choice(list(artifacts))]
            catalog.get_or_build(graph, kind, k, dumb_weight=dumb)
            lookups += 1
        assert catalog.stats.hits + catalog.stats.misses == lookups
        assert catalog.stats.builds == len(artifacts)


@pytest.mark.soak
class TestConcurrentHammer:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_stats_conservation_under_threads(self, policy):
        cells = build_cells(5)
        artifacts = prebuild(cells)
        budget = int(
            sum(artifact.nbytes() for _, artifact in artifacts.values()) * 0.7
        )
        catalog = GraphCatalog(memory_budget_bytes=budget, policy=policy)
        universe = [
            (key, cell) for key, (cell, _) in artifacts.items()
        ]
        build_lock = threading.Lock()
        built_seconds = []
        stop = threading.Event()
        observer_failures = []

        def observer():
            # Mixed-policy stats observers: exercise every read face
            # the metrics layer uses while writers churn the tier.
            while not stop.is_set():
                try:
                    repr(catalog)
                    snapshot = catalog.keys()
                    assert len(snapshot) == len(set(snapshot))
                    assert catalog.stats.bytes_in_memory >= 0
                    assert catalog.eviction_policy().name == policy
                except AssertionError as exc:  # pragma: no cover
                    observer_failures.append(str(exc))
                    return

        def hammer(index):
            rng = random.Random(SOAK_SEED + index)
            for _ in range(SOAK_REQUESTS):
                key, (graph, kind, k, dumb) = rng.choice(universe)

                def builder(graph=graph, key=key):
                    artifact = catalog._build(graph, key)
                    with build_lock:
                        built_seconds.append(artifact.build_seconds)
                    return artifact

                artifact, origin = catalog.get_for_key(key, builder)
                assert artifact.key == key
                assert origin in ("memory", "built")

        hammers = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(SOAK_THREADS)
        ]
        observers = [threading.Thread(target=observer) for _ in range(2)]
        for thread in observers + hammers:
            thread.start()
        for thread in hammers:
            thread.join()
        stop.set()
        for thread in observers:
            thread.join()

        assert not observer_failures
        stats = catalog.stats
        total_calls = SOAK_THREADS * SOAK_REQUESTS
        # every lookup is counted exactly once: no lost updates
        assert stats.hits + stats.misses == total_calls
        # every build was observed by exactly one builder invocation
        assert stats.builds == len(built_seconds)
        assert stats.seconds_building == pytest.approx(sum(built_seconds))
        # final state is internally consistent
        live_bytes = sum(
            catalog.peek(key).nbytes() for key in catalog.keys()
        )
        assert stats.bytes_in_memory == live_bytes
        assert stats.bytes_in_memory <= budget
