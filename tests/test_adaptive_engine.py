"""Tests for the direction-adaptive (push/pull switching) engine."""

import numpy as np
import pytest

from repro.algorithms.programs import BFSProgram, CCProgram, PageRankProgram, SSSPProgram
from repro.algorithms.reference import (
    reference_bfs,
    reference_connected_components,
    reference_sssp,
)
from repro.algorithms import sssp
from repro.core.virtual import virtual_transform
from repro.engine.adaptive import AdaptiveOptions, run_adaptive
from repro.engine.schedule import VirtualScheduler
from repro.errors import EngineError
from repro.gpu.simulator import GPUSimulator


class TestCorrectness:
    def test_sssp_matches_reference(self, powerlaw_graph, hub_source):
        result = run_adaptive(powerlaw_graph, SSSPProgram(), hub_source)
        assert np.allclose(result.values, reference_sssp(powerlaw_graph, hub_source))

    def test_bfs_matches_reference(self, powerlaw_unweighted, hub_source):
        result = run_adaptive(powerlaw_unweighted, BFSProgram(), hub_source)
        assert np.allclose(
            result.values, reference_bfs(powerlaw_unweighted, hub_source),
            equal_nan=True,
        )

    def test_cc_matches_reference(self, powerlaw_symmetric):
        result = run_adaptive(powerlaw_symmetric, CCProgram(), None)
        assert np.array_equal(
            result.values.astype(np.int64),
            reference_connected_components(powerlaw_symmetric),
        )

    def test_iterations_match_plain_push(self, powerlaw_graph, hub_source):
        """Direction choice never changes the BSP iteration count."""
        plain = sssp(powerlaw_graph, hub_source)
        adaptive = run_adaptive(powerlaw_graph, SSSPProgram(), hub_source)
        assert adaptive.num_iterations == plain.num_iterations
        assert np.allclose(adaptive.values, plain.values)

    def test_non_monotone_program_rejected(self, powerlaw_unweighted):
        with pytest.raises(EngineError, match="monotone"):
            run_adaptive(powerlaw_unweighted, PageRankProgram(), None)

    def test_weights_required(self, powerlaw_unweighted, hub_source):
        with pytest.raises(EngineError, match="weights"):
            run_adaptive(powerlaw_unweighted, SSSPProgram(), hub_source)


class TestDirectionSwitching:
    def test_both_directions_used_on_powerlaw(self, powerlaw_graph, hub_source):
        """Power-law BFS from a hub: first/last levels sparse (push),
        middle levels dense (pull)."""
        result = run_adaptive(powerlaw_graph, SSSPProgram(), hub_source)
        assert result.pull_iterations >= 1
        assert result.push_iterations >= 1
        assert result.pull_iterations + result.push_iterations == result.num_iterations

    def test_threshold_one_is_pure_push(self, powerlaw_graph, hub_source):
        result = run_adaptive(
            powerlaw_graph, SSSPProgram(), hub_source,
            options=AdaptiveOptions(pull_threshold=1.01),
        )
        assert result.pull_iterations == 0

    def test_threshold_zero_is_pure_pull(self, powerlaw_graph, hub_source):
        result = run_adaptive(
            powerlaw_graph, SSSPProgram(), hub_source,
            options=AdaptiveOptions(pull_threshold=0.0),
        )
        assert result.push_iterations == 0
        assert np.allclose(result.values, reference_sssp(powerlaw_graph, hub_source))

    def test_any_threshold_same_results(self, powerlaw_graph, hub_source):
        ref = reference_sssp(powerlaw_graph, hub_source)
        for threshold in (0.0, 0.05, 0.3, 1.5):
            result = run_adaptive(
                powerlaw_graph, SSSPProgram(), hub_source,
                options=AdaptiveOptions(pull_threshold=threshold),
            )
            assert np.allclose(result.values, ref), threshold


class TestComposition:
    def test_tigr_virtual_pull_scheduler(self, powerlaw_graph, hub_source):
        """Direction adaptivity composes with Tigr: virtual scheduling
        of the pull sweeps over the reverse graph."""
        reverse = powerlaw_graph.reverse()
        scheduler = VirtualScheduler(virtual_transform(reverse, 8))
        result = run_adaptive(
            powerlaw_graph, SSSPProgram(), hub_source,
            reverse=reverse, pull_scheduler=scheduler,
        )
        assert np.allclose(result.values, reference_sssp(powerlaw_graph, hub_source))

    def test_simulator_attached(self, powerlaw_graph, hub_source):
        sim = GPUSimulator()
        result = run_adaptive(powerlaw_graph, SSSPProgram(), hub_source, simulator=sim)
        assert result.metrics.num_iterations == result.num_iterations

    def test_max_iterations_guard(self, powerlaw_graph, hub_source):
        with pytest.raises(EngineError, match="adaptive"):
            run_adaptive(powerlaw_graph, SSSPProgram(), hub_source,
                         options=AdaptiveOptions(max_iterations=1))
