"""Tests for the G-Shards / Concatenated Windows representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.programs import BFSProgram, CCProgram, SSSPProgram, SSWPProgram
from repro.algorithms.reference import (
    reference_bfs,
    reference_connected_components,
    reference_sssp,
    reference_sswp,
)
from repro.baselines.cusha_shards import GShards
from repro.errors import EngineError
from repro.graph.builder import from_edge_list, to_undirected
from repro.graph.generators import rmat


@pytest.fixture(scope="module")
def shard_graph():
    return rmat(100, 900, seed=23, weight_range=(1, 9))


class TestConstruction:
    def test_bad_shard_size(self, shard_graph):
        with pytest.raises(EngineError):
            GShards.from_graph(shard_graph, 0)

    def test_shard_count(self, shard_graph):
        shards = GShards.from_graph(shard_graph, 32)
        assert shards.num_shards == -(-100 // 32)

    def test_every_edge_once(self, shard_graph):
        shards = GShards.from_graph(shard_graph, 16)
        assert shards.num_edges == shard_graph.num_edges
        original = sorted(zip(*shard_graph.to_coo()[:2]))
        stored = sorted(zip(shards.src.tolist(), shards.dst.tolist()))
        assert original == stored

    def test_destinations_partitioned(self, shard_graph):
        shards = GShards.from_graph(shard_graph, 16)
        for shard in range(shards.num_shards):
            span = shards.shard_edges(shard)
            dsts = shards.dst[span]
            assert np.all(dsts // 16 == shard)

    def test_sources_sorted_within_windows(self, shard_graph):
        """The coalescing property: each window's sources ascend."""
        shards = GShards.from_graph(shard_graph, 16)
        for shard in range(shards.num_shards):
            for source_shard in range(shards.num_shards):
                window = shards.window(shard, source_shard)
                srcs = shards.src[window]
                assert np.all(np.diff(srcs) >= 0)
                assert np.all(srcs // 16 == source_shard) if len(srcs) else True

    def test_windows_tile_each_shard(self, shard_graph):
        shards = GShards.from_graph(shard_graph, 16)
        for shard in range(shards.num_shards):
            span = shards.shard_edges(shard)
            covered = 0
            for source_shard in range(shards.num_shards):
                window = shards.window(shard, source_shard)
                covered += window.stop - window.start
            assert covered == span.stop - span.start

    def test_weights_travel_with_edges(self, shard_graph):
        shards = GShards.from_graph(shard_graph, 16)
        # rebuild a lookup and compare a sample
        lookup = {}
        src, dst, w = shard_graph.to_coo()
        for s, d, weight in zip(src, dst, w):
            lookup[(int(s), int(d))] = float(weight)
        for i in range(0, shards.num_edges, 37):
            key = (int(shards.src[i]), int(shards.dst[i]))
            assert lookup[key] == float(shards.weights[i])

    def test_single_shard_degenerate(self, shard_graph):
        shards = GShards.from_graph(shard_graph, 1000)
        assert shards.num_shards == 1


class TestSemantics:
    def test_sssp_equals_reference(self, shard_graph):
        shards = GShards.from_graph(shard_graph, 16)
        source = int(np.argmax(shard_graph.out_degrees()))
        values, _ = shards.run_program(SSSPProgram(), source)
        assert np.allclose(values, reference_sssp(shard_graph, source))

    def test_bfs_equals_reference(self, shard_graph):
        g = shard_graph.without_weights()
        shards = GShards.from_graph(g, 8)
        source = int(np.argmax(g.out_degrees()))
        values, _ = shards.run_program(BFSProgram(), source)
        assert np.allclose(values, reference_bfs(g, source), equal_nan=True)

    def test_sswp_equals_reference(self, shard_graph):
        shards = GShards.from_graph(shard_graph, 16)
        source = int(np.argmax(shard_graph.out_degrees()))
        values, _ = shards.run_program(SSWPProgram(), source)
        assert np.allclose(values, reference_sswp(shard_graph, source))

    def test_cc_equals_reference(self):
        g = to_undirected(rmat(80, 400, seed=5))
        shards = GShards.from_graph(g, 16)
        values, _ = shards.run_program(CCProgram(), None)
        assert np.array_equal(
            values.astype(np.int64), reference_connected_components(g)
        )

    def test_iterations_bounded_by_push_engine(self, shard_graph):
        """Shard sweeps converge no slower than +1 of the BSP push
        engine (same value propagation per sweep)."""
        from repro.algorithms import sssp

        source = int(np.argmax(shard_graph.out_degrees()))
        push = sssp(shard_graph, source)
        shards = GShards.from_graph(shard_graph, 16)
        _, iterations = shards.run_program(SSSPProgram(), source)
        assert iterations <= push.num_iterations + 1

    def test_nonconvergence_guard(self, shard_graph):
        shards = GShards.from_graph(shard_graph, 16)
        source = int(np.argmax(shard_graph.out_degrees()))
        with pytest.raises(EngineError, match="converge"):
            shards.run_program(SSSPProgram(), source, max_iterations=1)


class TestStorage:
    def test_edge_replication_factor(self, shard_graph):
        shards = GShards.from_graph(shard_graph, 16)
        csr_words = (shard_graph.num_nodes + 1) + 2 * shard_graph.num_edges
        # 4 words/edge (weighted) vs CSR's ~2: the CuSha blow-up
        assert shards.storage_words() > 1.5 * csr_words

    def test_unweighted_cheaper(self):
        g = rmat(100, 900, seed=23)
        weighted = GShards.from_graph(g.with_weights(np.ones(g.num_edges)), 16)
        unweighted = GShards.from_graph(g, 16)
        assert unweighted.storage_words() < weighted.storage_words()


@given(
    seed=st.integers(min_value=0, max_value=30),
    shard_size=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=25, deadline=None)
def test_shard_sssp_property(seed, shard_size):
    """Property: any shard size yields reference SSSP results."""
    graph = rmat(40, 300, seed=seed, weight_range=(1, 7))
    source = int(np.argmax(graph.out_degrees()))
    shards = GShards.from_graph(graph, shard_size)
    values, _ = shards.run_program(SSSPProgram(), source)
    assert np.allclose(values, reference_sssp(graph, source))


class TestConcatenatedWindows:
    def test_cw_results_identical(self, shard_graph):
        shards = GShards.from_graph(shard_graph, 16)
        source = int(np.argmax(shard_graph.out_degrees()))
        plain, _ = shards.run_program(SSSPProgram(), source)
        cw_values, _, _ = shards.run_program_cw(SSSPProgram(), source)
        assert np.allclose(cw_values, plain)

    def test_cw_skips_stale_edge_work(self, shard_graph):
        """The CW payoff: fewer edges swept than all-shards x sweeps."""
        shards = GShards.from_graph(shard_graph, 16)
        source = int(np.argmax(shard_graph.out_degrees()))
        _, iterations = shards.run_program(SSSPProgram(), source)
        _, cw_iterations, cw_edges = shards.run_program_cw(SSSPProgram(), source)
        full_edges = iterations * shards.num_edges
        assert cw_edges < full_edges
        assert cw_iterations <= iterations + 1

    def test_cw_cc(self):
        g = to_undirected(rmat(80, 400, seed=5))
        shards = GShards.from_graph(g, 16)
        values, _, _ = shards.run_program_cw(CCProgram(), None)
        assert np.array_equal(
            values.astype(np.int64), reference_connected_components(g)
        )

    def test_cw_nonconvergence_guard(self, shard_graph):
        shards = GShards.from_graph(shard_graph, 16)
        source = int(np.argmax(shard_graph.out_degrees()))
        with pytest.raises(EngineError, match="CW"):
            shards.run_program_cw(SSSPProgram(), source, max_iterations=1)
