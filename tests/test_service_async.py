"""Asyncio bridge: awaitable tickets, backpressure, completion order."""

import asyncio
import threading
import time

import pytest

from repro.errors import ServiceError, ServiceOverloadError, UnknownGraphError
from repro.service import AnalyticsService, GraphCatalog, QueryRequest
from repro.service.api.bridge import (
    as_resolved,
    gather_results,
    submit_batch_async,
)


@pytest.fixture
def service(powerlaw_graph):
    with AnalyticsService(GraphCatalog(), workers=2) as svc:
        svc.register("g", powerlaw_graph)
        yield svc


class TestAwaitableTicket:
    def test_await_ticket_directly(self, service):
        async def main():
            ticket = service.submit(QueryRequest.single("bfs", "g", 0))
            return await ticket

        result = asyncio.run(main())
        assert result.ok

    def test_aresult_after_resolution_is_immediate(self, service):
        ticket = service.submit(QueryRequest.single("bfs", "g", 0))
        ticket.result(60.0)  # resolve synchronously first

        async def main():
            return await ticket.aresult()

        assert asyncio.run(main()).ok

    def test_aresult_timeout(self, service, monkeypatch):
        gate = threading.Event()
        original = service._prepare

        def stalled(*args, **kwargs):
            gate.wait(30.0)
            return original(*args, **kwargs)

        monkeypatch.setattr(service, "_prepare", stalled)
        ticket = service.submit(QueryRequest.single("bfs", "g", 0))

        async def main():
            await ticket.aresult(timeout=0.05)

        try:
            with pytest.raises(ServiceError, match="not finished within"):
                asyncio.run(main())
        finally:
            gate.set()
            ticket.result(60.0)

    def test_add_done_callback_after_resolution_fires(self, service):
        ticket = service.submit(QueryRequest.single("bfs", "g", 0))
        ticket.result(60.0)
        seen = []
        ticket.add_done_callback(lambda t, r: seen.append((t, r)))
        assert seen and seen[0][0] is ticket
        assert seen[0][1].ok

    def test_callback_exception_does_not_break_others(self, service):
        seen = []
        ticket = service.submit(QueryRequest.single("bfs", "g", 0))

        def bad(_t, _r):
            raise RuntimeError("observer crashed")

        ticket.add_done_callback(bad)
        ticket.add_done_callback(lambda t, r: seen.append(r))
        result = ticket.result(60.0)
        assert result.ok
        # the crashing observer must not have eaten the later one
        deadline = time.perf_counter() + 5.0
        while not seen and time.perf_counter() < deadline:
            time.sleep(0.01)
        assert seen and seen[0] is result

    def test_many_waiters_one_ticket(self, service):
        async def main():
            ticket = service.submit(QueryRequest.single("bfs", "g", 0))
            results = await asyncio.gather(
                *(ticket.aresult() for _ in range(8))
            )
            return results

        results = asyncio.run(main())
        assert len(results) == 8
        assert all(r is results[0] for r in results)


class TestSubmitBatchAsync:
    def test_submits_and_gathers(self, service):
        async def main():
            tickets = await submit_batch_async(
                service,
                [QueryRequest.single("bfs", "g", s) for s in range(4)],
            )
            return await gather_results(tickets)

        results = asyncio.run(main())
        assert [r.ok for r in results] == [True] * 4
        # submission order preserved by gather_results
        assert [sorted(r.values) for r in results] == [[s] for s in range(4)]

    def test_backpressure_waits_then_raises(self, powerlaw_graph):
        gate = threading.Event()
        with AnalyticsService(
            GraphCatalog(), workers=1, queue_size=1
        ) as svc:
            svc.register("g", powerlaw_graph)
            original = svc._prepare

            def stalled(*args, **kwargs):
                gate.wait(30.0)
                return original(*args, **kwargs)

            svc._prepare = stalled
            # one item executing (stalled), one filling the queue:
            # every further admission sees a full queue
            stuck = svc.submit(QueryRequest.single("bfs", "g", 0))
            time.sleep(0.05)  # let the worker pick it up and stall
            queued = svc.submit(
                QueryRequest.single("bfs", "g", 1), block=False
            )

            async def main():
                t0 = time.monotonic()
                with pytest.raises(ServiceOverloadError):
                    await submit_batch_async(
                        svc,
                        [QueryRequest.single("bfs", "g", 2)],
                        max_wait_s=0.2,
                    )
                return time.monotonic() - t0

            waited = asyncio.run(main())
            assert waited >= 0.2  # it suspended, it did not give up early
            gate.set()
            assert stuck.result(60.0).ok
            assert queued.result(60.0).ok

    def test_backpressure_resolves_when_queue_drains(self, powerlaw_graph):
        gate = threading.Event()
        with AnalyticsService(
            GraphCatalog(), workers=1, queue_size=1
        ) as svc:
            svc.register("g", powerlaw_graph)
            original = svc._prepare

            def stalled(*args, **kwargs):
                gate.wait(30.0)
                return original(*args, **kwargs)

            svc._prepare = stalled
            stuck = svc.submit(QueryRequest.single("bfs", "g", 0))
            time.sleep(0.05)
            queued = svc.submit(
                QueryRequest.single("bfs", "g", 1), block=False
            )

            async def main():
                async def release():
                    await asyncio.sleep(0.1)
                    gate.set()

                opener = asyncio.ensure_future(release())
                tickets = await submit_batch_async(
                    svc,
                    [QueryRequest.single("bfs", "g", 2)],
                    max_wait_s=30.0,
                )
                await opener
                return await gather_results(tickets)

            results = asyncio.run(main())
            assert results[0].ok
            assert stuck.result(60.0).ok and queued.result(60.0).ok

    def test_unknown_graph_raises_typed_error(self, service):
        async def main():
            await submit_batch_async(
                service, [QueryRequest.single("bfs", "nope", 0)]
            )

        with pytest.raises(UnknownGraphError, match="nope"):
            asyncio.run(main())

    def test_overload_error_is_service_error(self):
        assert issubclass(ServiceOverloadError, ServiceError)
        exc = ServiceOverloadError("full", retry_after_s=3.5)
        assert exc.retry_after_s == 3.5


class TestAsResolved:
    def test_completion_order_not_submission_order(
        self, powerlaw_graph, monkeypatch
    ):
        gate = threading.Event()
        slow_graph = powerlaw_graph.without_weights()
        with AnalyticsService(GraphCatalog(), workers=2) as svc:
            svc.register("fast", powerlaw_graph)
            svc.register("slow", slow_graph)
            original = svc._prepare

            def gated(graph, algorithm):
                if graph is slow_graph:
                    gate.wait(30.0)
                return original(graph, algorithm)

            monkeypatch.setattr(svc, "_prepare", gated)

            async def main():
                tickets = await submit_batch_async(
                    svc,
                    [
                        QueryRequest.single("bfs", "slow", 0),
                        QueryRequest.single("bfs", "fast", 0),
                    ],
                )
                order = []
                async for ticket, result in as_resolved(tickets):
                    order.append(ticket.request.graph)
                    assert result.ok
                    gate.set()  # release "slow" once "fast" streamed
                return order

            try:
                assert asyncio.run(main()) == ["fast", "slow"]
            finally:
                gate.set()

    def test_empty_sequence(self):
        async def main():
            return [pair async for pair in as_resolved([])]

        assert asyncio.run(main()) == []

    def test_drain_waits_for_inflight(self, service):
        tickets = service.submit_batch(
            [QueryRequest.single("bfs", "g", s) for s in range(8)]
        )
        assert service.drain(timeout_s=60.0) is True
        assert all(t.done() for t in tickets)
        # service still accepts work after a drain (unlike close)
        assert service.run(QueryRequest.single("bfs", "g", 0)).ok

    def test_drain_timeout_returns_false(self, powerlaw_graph, monkeypatch):
        gate = threading.Event()
        with AnalyticsService(GraphCatalog(), workers=1) as svc:
            svc.register("g", powerlaw_graph)
            original = svc._prepare

            def stalled(*args, **kwargs):
                gate.wait(30.0)
                return original(*args, **kwargs)

            monkeypatch.setattr(svc, "_prepare", stalled)
            ticket = svc.submit(QueryRequest.single("bfs", "g", 0))
            assert svc.drain(timeout_s=0.1) is False
            gate.set()
            assert ticket.result(60.0).ok
            assert svc.drain(timeout_s=60.0) is True
