"""Shared fixtures: small deterministic graphs used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.builder import from_edge_list, to_undirected
from repro.graph.generators import grid_2d, rmat, star


@pytest.fixture
def figure2_graph():
    """The weighted 4-node SSSP example of the paper's Figure 2.

    Node 0 is the source; edges (0->1 w2), (0->2 w2), (1->2 w4),
    (1->3 w1), (2->3 w4).  Final distances: [0, 2, 2, 3].
    """
    return from_edge_list(
        [(0, 1, 2.0), (0, 2, 2.0), (1, 2, 4.0), (1, 3, 1.0), (2, 3, 4.0)]
    )


@pytest.fixture
def diamond_graph():
    """Unweighted diamond: 0 -> {1, 2} -> 3."""
    return from_edge_list([(0, 1), (0, 2), (1, 3), (2, 3)])


@pytest.fixture
def star5_graph():
    """Degree-5 star — the Figure 6 UDT example input."""
    return star(5)


@pytest.fixture
def powerlaw_graph():
    """A small weighted power-law graph (seeded, ~200 nodes)."""
    return rmat(200, 1500, seed=11, weight_range=(1, 10))


@pytest.fixture
def powerlaw_unweighted(powerlaw_graph):
    return powerlaw_graph.without_weights()


@pytest.fixture
def powerlaw_symmetric(powerlaw_unweighted):
    return to_undirected(powerlaw_unweighted)


@pytest.fixture
def regular_graph():
    """A perfectly regular control graph (every node degree <= 4)."""
    return grid_2d(8, 8)


@pytest.fixture
def hub_source(powerlaw_graph):
    """Highest-outdegree node of the power-law fixture."""
    return int(np.argmax(powerlaw_graph.out_degrees()))
