"""Unit tests for the GPU cost model: config, memory, simulator, metrics."""

import numpy as np
import pytest

from repro.errors import DeviceOutOfMemoryError
from repro.gpu.config import GPUConfig, KernelProfile
from repro.gpu.memory import edge_transactions, value_transactions
from repro.gpu.metrics import IterationMetrics, RunMetrics
from repro.gpu.simulator import GPUSimulator
from repro.gpu.warp import WorkTrace, warp_statistics


def uniform_trace(threads=32, count=4):
    return WorkTrace.uniform(threads, count)


class TestGPUConfig:
    def test_warp_slots(self):
        assert GPUConfig(cores=896, warp_size=32).warp_slots == 28

    def test_cycles_to_ms(self):
        cfg = GPUConfig(clock_ghz=1.0)
        assert cfg.cycles_to_ms(1e6) == pytest.approx(1.0)

    def test_with_memory(self):
        cfg = GPUConfig().with_memory(123)
        assert cfg.device_memory_bytes == 123

    def test_profile_scaled(self):
        p = KernelProfile().scaled(cycles_per_step=99.0)
        assert p.cycles_per_step == 99.0
        assert p.cycles_per_thread == KernelProfile().cycles_per_thread


class TestMemoryModel:
    def test_edge_transactions_floor_is_steps(self):
        # one active lane: gap clips to 128 -> per-edge factor 1,
        # but at least one transaction per step either way
        stats = warp_statistics(WorkTrace(
            np.array([5]), np.array([0]), np.array([1])
        ))
        cfg = GPUConfig()
        assert edge_transactions(stats, cfg)[0] == pytest.approx(5.0)

    def test_coalesced_cheaper_than_strided(self):
        cfg = GPUConfig()
        coalesced = warp_statistics(WorkTrace(
            np.full(32, 10), np.arange(32), np.full(32, 32)
        ))
        strided = warp_statistics(WorkTrace(
            np.full(32, 10), np.arange(32) * 10, np.ones(32, dtype=np.int64)
        ))
        assert edge_transactions(coalesced, cfg)[0] < edge_transactions(strided, cfg)[0]

    def test_value_transactions_scale_with_factor(self):
        stats = warp_statistics(uniform_trace())
        assert value_transactions(stats, KernelProfile(value_access_factor=2.0))[0] == \
            pytest.approx(2 * value_transactions(stats, KernelProfile(value_access_factor=1.0))[0])


class TestSimulator:
    def test_check_memory_passes_under_budget(self):
        GPUSimulator(GPUConfig()).check_memory(1024, "test")

    def test_check_memory_raises(self):
        sim = GPUSimulator(GPUConfig(device_memory_bytes=100))
        with pytest.raises(DeviceOutOfMemoryError) as excinfo:
            sim.check_memory(200, "a working set")
        err = excinfo.value
        assert err.required_bytes == 200
        assert err.available_bytes == 100
        assert "a working set" in str(err)

    def test_record_iteration_accumulates(self):
        sim = GPUSimulator()
        sim.record_iteration(uniform_trace())
        sim.record_iteration(uniform_trace())
        metrics = sim.finish()
        assert metrics.num_iterations == 2
        assert metrics.total_edges_processed == 2 * 32 * 4

    def test_empty_trace_costs_only_launch(self):
        sim = GPUSimulator()
        it = sim.record_iteration(WorkTrace(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
        ))
        assert it.cycles == sim.config.kernel_launch_cycles
        assert it.edges_processed == 0

    def test_makespan_includes_critical_warp(self):
        """A single hub warp dominates even with idle device capacity.

        Same total edge work either way: one warp where a hub lane
        serialises 10,000 steps, versus the work spread evenly over
        hundreds of one-step warps running concurrently.
        """
        skewed = WorkTrace(
            np.array([10_000] + [1] * 31),
            np.arange(32) * 10,
            np.ones(32, dtype=np.int64),
        )
        balanced = WorkTrace.uniform(10_031, 1)
        t_skewed = GPUSimulator().record_iteration(skewed).cycles
        t_balanced = GPUSimulator().record_iteration(balanced).cycles
        assert t_skewed > 5 * t_balanced

    def test_launch_overhead_multiplier(self):
        cfg = GPUConfig()
        one = GPUSimulator(cfg, KernelProfile(launches_per_iteration=1))
        three = GPUSimulator(cfg, KernelProfile(launches_per_iteration=3))
        c1 = one.record_iteration(uniform_trace()).cycles
        c3 = three.record_iteration(uniform_trace()).cycles
        assert c3 - c1 == pytest.approx(2 * cfg.kernel_launch_cycles)

    def test_record_uniform_iterations(self):
        sim = GPUSimulator()
        sim.record_uniform_iterations(uniform_trace(), 5)
        metrics = sim.finish()
        assert metrics.num_iterations == 5
        times = [it.time_ms for it in metrics.iterations]
        assert len(set(times)) == 1

    def test_record_uniform_zero_reps(self):
        sim = GPUSimulator()
        sim.record_uniform_iterations(uniform_trace(), 0)
        assert sim.finish().num_iterations == 0

    def test_instruction_counting(self):
        prof = KernelProfile(instructions_per_edge=10, instructions_per_thread=8)
        sim = GPUSimulator(profile=prof)
        it = sim.record_iteration(uniform_trace(threads=16, count=2))
        assert it.instructions == pytest.approx(10 * 32 + 8 * 16)


class TestRunMetrics:
    def _iteration(self, i, time_ms=1.0, steps=10, eff=0.5):
        return IterationMetrics(
            iteration=i, num_threads=4, edges_processed=20, simd_steps=steps,
            cycles=time_ms * 1e6, time_ms=time_ms, instructions=100.0,
            edge_transactions=5.0, value_transactions=10.0, warp_efficiency=eff,
        )

    def test_totals(self):
        m = RunMetrics()
        m.add(self._iteration(0, time_ms=1.0))
        m.add(self._iteration(1, time_ms=3.0))
        assert m.total_time_ms == pytest.approx(4.0)
        assert m.mean_time_per_iteration_ms == pytest.approx(2.0)
        assert m.total_edges_processed == 40
        assert m.total_transactions == pytest.approx(30.0)

    def test_empty(self):
        m = RunMetrics()
        assert m.num_iterations == 0
        assert m.warp_efficiency == 1.0
        assert m.mean_time_per_iteration_ms == 0.0

    def test_weighted_efficiency(self):
        m = RunMetrics()
        m.add(self._iteration(0, steps=10, eff=1.0))
        m.add(self._iteration(1, steps=30, eff=0.5))
        assert m.warp_efficiency == pytest.approx((10 * 1.0 + 30 * 0.5) / 40)

    def test_summary_keys(self):
        m = RunMetrics()
        m.add(self._iteration(0))
        summary = m.summary()
        for key in ("iterations", "time_ms", "instructions", "warp_efficiency"):
            assert key in summary
