"""Tests for the Subway-style active-subgraph streaming model."""

import numpy as np
import pytest

from repro.algorithms.reference import reference_pagerank, reference_sssp
from repro.baselines.streaming import StreamingTigrMethod
from repro.baselines.subway import SubwayMethod
from repro.gpu.config import GPUConfig
from repro.graph.generators import rmat


@pytest.fixture(scope="module")
def graph():
    return rmat(400, 4000, seed=71, weight_range=(1, 9))


@pytest.fixture(scope="module")
def source(graph):
    return int(np.argmax(graph.out_degrees()))


def tight_config(graph):
    resident = SubwayMethod().footprint(graph, "sssp")
    return GPUConfig(device_memory_bytes=resident + 20_000)


class TestSemantics:
    def test_results_exact_when_fitting(self, graph, source):
        result = SubwayMethod().run(graph, "sssp", source, config=GPUConfig())
        assert np.allclose(result.values, reference_sssp(graph, source))
        assert result.notes["oversubscribed"] == 0.0
        assert result.notes["stream_ms"] == 0.0

    def test_results_exact_when_oversubscribed(self, graph, source):
        result = SubwayMethod().run(graph, "sssp", source, config=tight_config(graph))
        assert not result.oom
        assert np.allclose(result.values, reference_sssp(graph, source))
        assert result.notes["oversubscribed"] == 1.0
        assert result.notes["stream_ms"] > 0


class TestSubwayBeatsPartitionStreaming:
    def test_frontier_analytics_stream_less(self, graph, source):
        """The Subway claim: active-subgraph transfers undercut
        whole-partition transfers on frontier analytics."""
        config = tight_config(graph)
        partitioned = StreamingTigrMethod().run(graph, "sssp", source, config=config)
        subway = SubwayMethod().run(graph, "sssp", source, config=config)
        assert subway.notes["streamed_bytes"] < partitioned.notes["streamed_bytes"]
        assert np.allclose(subway.values, partitioned.values)

    def test_all_active_analytics_narrow_the_gap(self, graph):
        """PR keeps everything active: Subway's subgraph IS the graph
        each iteration, so the advantage shrinks (or inverts — Subway
        additionally pays subgraph generation)."""
        config = tight_config(graph)
        partitioned = StreamingTigrMethod().run(graph, "pr", None, config=config)
        subway = SubwayMethod().run(graph, "pr", None, config=config)
        assert np.allclose(subway.values, reference_pagerank(graph.without_weights()),
                           atol=1e-6)
        sssp_partitioned = StreamingTigrMethod().run(
            graph, "sssp", int(np.argmax(graph.out_degrees())), config=config
        )
        sssp_subway = SubwayMethod().run(
            graph, "sssp", int(np.argmax(graph.out_degrees())), config=config
        )
        frontier_ratio = (sssp_subway.notes["streamed_bytes"]
                          / max(sssp_partitioned.notes["streamed_bytes"], 1))
        all_active_ratio = (subway.notes["streamed_bytes"]
                            / max(partitioned.notes["streamed_bytes"], 1))
        assert frontier_ratio < all_active_ratio

    def test_generation_cost_charged(self, graph, source):
        result = SubwayMethod().run(graph, "sssp", source, config=tight_config(graph))
        assert result.notes["generation_ms"] > 0
