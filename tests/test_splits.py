"""Unit tests for the clique / circular / star split transformations."""

import math

import numpy as np
import pytest

from repro.core.analysis import predict_properties
from repro.core.properties import check_split_transformation
from repro.core.splits import circular_transform, clique_transform, star_transform
from repro.errors import TransformError
from repro.graph.generators import rmat, star

TRANSFORMS = {
    "cliq": clique_transform,
    "circ": circular_transform,
    "star": star_transform,
}


@pytest.mark.parametrize("topology", list(TRANSFORMS))
@pytest.mark.parametrize("d,k", [(5, 3), (12, 4), (100, 10), (7, 2)])
def test_counts_match_table1(topology, d, k):
    """Measured #new nodes/edges/degree/hops equal the Table 1 forms."""
    result = TRANSFORMS[topology](star(d), k)
    predicted = predict_properties(topology, d, k)
    assert result.stats.new_nodes == predicted.new_nodes
    assert result.stats.new_edges == predicted.new_edges
    assert result.stats.max_degree_after == predicted.new_degree
    assert result.stats.max_family_hops == predicted.max_hops


@pytest.mark.parametrize("topology", list(TRANSFORMS))
def test_definition2_contract(topology, powerlaw_graph):
    result = TRANSFORMS[topology](powerlaw_graph, 4)
    check_split_transformation(powerlaw_graph, result)


@pytest.mark.parametrize("topology", list(TRANSFORMS))
def test_no_op_below_bound(topology, regular_graph):
    result = TRANSFORMS[topology](regular_graph, 10)
    assert result.stats.new_nodes == 0


@pytest.mark.parametrize("topology", list(TRANSFORMS))
def test_bad_bound_rejected(topology, powerlaw_graph):
    with pytest.raises(TransformError):
        TRANSFORMS[topology](powerlaw_graph, 0)


class TestClique:
    def test_family_strongly_connected_one_hop(self):
        d, k = 12, 4
        result = clique_transform(star(d), k)
        members = result.families()[0]
        graph = result.graph
        for a in members:
            for b in members:
                if a != b:
                    assert graph.has_edge(int(a), int(b))

    def test_quadratic_edge_growth(self):
        """T_cliq's space cost is quadratic in the family size."""
        small = clique_transform(star(40), 4).stats.new_edges
        big = clique_transform(star(400), 4).stats.new_edges
        assert big / small > 50  # ~100x for 10x degree


class TestCircular:
    def test_cycle_structure(self):
        d, k = 12, 4
        result = circular_transform(star(d), k)
        members = result.families()[0]
        graph = result.graph
        # each member has exactly one new (cycle) edge to another member
        sources = graph.edge_sources()
        for m in members:
            new_out = result.new_edge_mask & (sources == m)
            assert new_out.sum() == 1
            assert graph.targets[new_out][0] in members

    def test_degree_bound_k_plus_one(self):
        result = circular_transform(star(100), 5)
        assert result.graph.max_out_degree() <= 6

    def test_hops_grow_linearly(self):
        """The slow-propagation corner of the Table 1 trade-off."""
        assert circular_transform(star(100), 4).stats.max_family_hops == math.ceil(100 / 4) - 1


class TestStar:
    def test_hub_keeps_no_original_edges(self):
        d, k = 12, 4
        result = star_transform(star(d), k)
        graph = result.graph
        sources = graph.edge_sources()
        hub_original = (~result.new_edge_mask) & (sources == 0)
        assert hub_original.sum() == 0

    def test_hub_degree_is_family_size(self):
        result = star_transform(star(100), 4)
        assert result.graph.out_degree(0) == math.ceil(100 / 4)

    def test_hub_node_issue(self):
        """The motivation for UDT: the hub degree can exceed K."""
        result = star_transform(star(100), 4)
        assert result.graph.max_out_degree() > 4

    def test_residual_count_can_exceed_one(self):
        """Figure 6-(a): T_star on degree 5, K=3 leaves two residuals."""
        result = star_transform(star(5), 3)
        degrees = result.graph.out_degrees()
        members = result.families()[0]
        residuals = int(np.sum((degrees[members] > 0) & (degrees[members] < 3)))
        assert residuals == 2


def test_all_topologies_on_random_graph():
    graph = rmat(80, 900, seed=13, weight_range=(1, 5))
    for topology, transform in TRANSFORMS.items():
        result = transform(graph, 3)
        check_split_transformation(graph, result)
        assert result.stats.num_families == int(np.sum(graph.out_degrees() > 3))
