"""Tests for the multi-GPU partitioned engine (§7.2 orthogonality)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.programs import BFSProgram, CCProgram, SSSPProgram
from repro.algorithms.reference import (
    reference_bfs,
    reference_connected_components,
    reference_sssp,
)
from repro.engine.push import EngineOptions
from repro.errors import EngineError, GraphError
from repro.graph.builder import to_undirected
from repro.graph.generators import rmat
from repro.multigpu import (
    InterconnectConfig,
    MultiGPUConfig,
    hash_partition,
    range_partition,
    run_multi_gpu,
)
from repro.multigpu.partition import partition_balance


@pytest.fixture(scope="module")
def graph():
    return rmat(300, 3000, seed=41, weight_range=(1, 9))


@pytest.fixture(scope="module")
def source(graph):
    return int(np.argmax(graph.out_degrees()))


class TestPartitioning:
    @pytest.mark.parametrize("partitioner", [range_partition, hash_partition])
    @pytest.mark.parametrize("devices", [1, 2, 3, 4])
    def test_edges_partitioned_exactly(self, graph, partitioner, devices):
        partitions = partitioner(graph, devices)
        assert len(partitions) == devices
        assert sum(p.num_edges for p in partitions) == graph.num_edges
        owned = np.concatenate([p.owned for p in partitions])
        assert sorted(owned.tolist()) == list(range(graph.num_nodes))

    def test_edges_leave_owned_nodes_only(self, graph):
        for partition in range_partition(graph, 3):
            sources = np.unique(partition.subgraph.edge_sources())
            owned = set(partition.owned.tolist())
            assert all(int(s) in owned for s in sources)

    def test_range_partition_balances_edges(self, graph):
        assert partition_balance(range_partition(graph, 4)) < 1.6

    def test_owns_mask(self, graph):
        partition = range_partition(graph, 2)[0]
        nodes = np.array([int(partition.owned[0]), graph.num_nodes - 1])
        mask = partition.owns(nodes)
        assert mask[0]

    def test_bad_device_count(self, graph):
        with pytest.raises(GraphError):
            range_partition(graph, 0)


class TestSemantics:
    @pytest.mark.parametrize("partitioner", [range_partition, hash_partition])
    @pytest.mark.parametrize("devices", [1, 2, 4])
    def test_sssp_matches_reference(self, graph, source, partitioner, devices):
        result = run_multi_gpu(
            graph, SSSPProgram(), source,
            config=MultiGPUConfig(num_devices=devices),
            partitioner=partitioner,
        )
        assert result.converged
        assert np.allclose(result.values, reference_sssp(graph, source))

    def test_bfs_matches(self, graph, source):
        g = graph.without_weights()
        result = run_multi_gpu(g, BFSProgram(), source,
                               config=MultiGPUConfig(num_devices=3))
        assert np.allclose(result.values, reference_bfs(g, source), equal_nan=True)

    def test_cc_matches(self):
        g = to_undirected(rmat(100, 600, seed=3))
        result = run_multi_gpu(g, CCProgram(), None,
                               config=MultiGPUConfig(num_devices=2))
        assert np.array_equal(
            result.values.astype(np.int64), reference_connected_components(g)
        )

    def test_tigr_per_device_matches(self, graph, source):
        """Virtual scheduling inside each device partition is exact."""
        result = run_multi_gpu(
            graph, SSSPProgram(), source,
            config=MultiGPUConfig(num_devices=2), degree_bound=8,
        )
        assert np.allclose(result.values, reference_sssp(graph, source))

    def test_same_supersteps_as_single_device(self, graph, source):
        """BSP partitioning cannot change the iteration count."""
        one = run_multi_gpu(graph, SSSPProgram(), source,
                            config=MultiGPUConfig(num_devices=1))
        four = run_multi_gpu(graph, SSSPProgram(), source,
                             config=MultiGPUConfig(num_devices=4))
        assert one.num_supersteps == four.num_supersteps

    def test_weights_required(self, graph, source):
        with pytest.raises(EngineError, match="weights"):
            run_multi_gpu(graph.without_weights(), SSSPProgram(), source)

    def test_nonconvergence_guard(self, graph, source):
        with pytest.raises(EngineError, match="multi-GPU"):
            run_multi_gpu(graph, SSSPProgram(), source,
                          options=EngineOptions(max_iterations=1))


class TestCostModel:
    def test_single_device_has_no_transfers(self, graph, source):
        result = run_multi_gpu(graph, SSSPProgram(), source,
                               config=MultiGPUConfig(num_devices=1))
        assert result.transfer_bytes == 0
        assert result.transfer_time_ms == 0.0
        assert result.remote_updates == 0

    def test_transfers_appear_with_devices(self, graph, source):
        result = run_multi_gpu(graph, SSSPProgram(), source,
                               config=MultiGPUConfig(num_devices=4))
        assert result.transfer_bytes > 0
        assert result.remote_updates > 0
        assert 0.0 < result.transfer_fraction < 1.0

    def test_hash_partition_moves_more_data_on_local_graphs(self):
        """Round-robin ownership cuts nearly every edge of a graph
        with locality, where range partitioning keeps neighbors on
        one device.  (On RMAT inputs, whose ids carry no locality,
        the two strategies cut similarly.)"""
        from repro.graph.generators import regular_ring

        ring = regular_ring(400, 4, weight_range=(1, 5), seed=0)
        ranged = run_multi_gpu(ring, SSSPProgram(), 0,
                               config=MultiGPUConfig(num_devices=4))
        hashed = run_multi_gpu(ring, SSSPProgram(), 0,
                               config=MultiGPUConfig(num_devices=4),
                               partitioner=hash_partition)
        assert hashed.transfer_bytes > 2 * ranged.transfer_bytes

    def test_kernel_time_drops_with_devices(self, graph, source):
        one = run_multi_gpu(graph, SSSPProgram(), source,
                            config=MultiGPUConfig(num_devices=1))
        four = run_multi_gpu(graph, SSSPProgram(), source,
                             config=MultiGPUConfig(num_devices=4))
        assert four.kernel_time_ms < one.kernel_time_ms

    def test_orthogonality_tigr_helps_every_device_count(self, graph, source):
        """The §7.2 claim: Tigr's benefit composes with multi-GPU."""
        for devices in (1, 2, 4):
            config = MultiGPUConfig(num_devices=devices)
            base = run_multi_gpu(graph, SSSPProgram(), source, config=config)
            tigr = run_multi_gpu(graph, SSSPProgram(), source, config=config,
                                 degree_bound=8)
            assert tigr.kernel_time_ms < base.kernel_time_ms, devices

    def test_interconnect_math(self):
        link = InterconnectConfig(bandwidth_bytes_per_ms=1000.0, latency_ms=0.5)
        assert link.transfer_ms(2000, 2) == pytest.approx(1.0 + 2.0)
        assert link.transfer_ms(0, 0) == 0.0

    def test_bad_device_count_config(self):
        with pytest.raises(ValueError):
            MultiGPUConfig(num_devices=0)


@given(devices=st.integers(min_value=1, max_value=5),
       seed=st.integers(min_value=0, max_value=20))
@settings(max_examples=15, deadline=None)
def test_multigpu_sssp_property(devices, seed):
    """Property: any partitioning/device count preserves SSSP."""
    graph = rmat(60, 400, seed=seed, weight_range=(1, 7))
    source = int(np.argmax(graph.out_degrees()))
    result = run_multi_gpu(graph, SSSPProgram(), source,
                           config=MultiGPUConfig(num_devices=devices))
    assert np.allclose(result.values, reference_sssp(graph, source))
