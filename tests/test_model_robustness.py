"""Robustness of the reproduction's headline claims to cost constants.

The GPU model has tunable coefficients (issue cost, transaction cost,
launch overhead, device width).  If the paper-shape results only held
at one magic setting, the reproduction would be a curve fit, not a
mechanism.  These tests perturb each coefficient by 2× in both
directions and assert the *qualitative* Figure 13 / Table 8 claims
survive every setting:

* Tigr-V+ beats the baseline engine;
* Tigr-V+ raises warp efficiency several-fold;
* virtual transformation costs zero extra iterations while physical
  UDT inflates them — which is pure semantics, independent of any
  cost constant, and asserted here for completeness.
"""

import numpy as np
import pytest

from repro.algorithms import sssp
from repro.core.udt import udt_transform
from repro.core.virtual import virtual_transform
from repro.engine.push import EngineOptions
from repro.engine.schedule import NodeScheduler, VirtualScheduler
from repro.gpu.config import GPUConfig, KernelProfile
from repro.gpu.simulator import GPUSimulator
from repro.graph.datasets import load_dataset


@pytest.fixture(scope="module")
def graph():
    return load_dataset("livejournal", scale=0.5)


@pytest.fixture(scope="module")
def source(graph):
    return int(np.argmax(graph.out_degrees()))


def run_pair(graph, source, config, profile):
    base_sim = GPUSimulator(config, profile)
    tigr_sim = GPUSimulator(config, profile)
    base = sssp(NodeScheduler(graph), source, simulator=base_sim)
    virtual = virtual_transform(graph, 10, coalesced=True)
    tigr = sssp(VirtualScheduler(virtual), source, simulator=tigr_sim)
    assert np.allclose(base.values, tigr.values)
    return base, tigr


PERTURBATIONS = [
    ("cycles_per_step", 0.5), ("cycles_per_step", 2.0),
    ("cycles_per_thread", 0.5), ("cycles_per_thread", 2.0),
    ("cycles_per_transaction", 0.5), ("cycles_per_transaction", 2.0),
    ("value_access_factor", 0.5), ("value_access_factor", 2.0),
]


@pytest.mark.parametrize("field,factor", PERTURBATIONS)
def test_tigr_wins_under_profile_perturbations(graph, source, field, factor):
    default = KernelProfile()
    profile = default.scaled(**{field: getattr(default, field) * factor})
    base, tigr = run_pair(graph, source, GPUConfig(), profile)
    assert tigr.metrics.total_time_ms < base.metrics.total_time_ms, (field, factor)
    assert tigr.metrics.warp_efficiency > 2 * base.metrics.warp_efficiency


@pytest.mark.parametrize("cores", [224, 448, 896, 1792, 3584])
def test_tigr_wins_across_device_widths(graph, source, cores):
    base, tigr = run_pair(graph, source, GPUConfig(cores=cores), KernelProfile())
    assert tigr.metrics.total_time_ms < base.metrics.total_time_ms


@pytest.mark.parametrize("launch_cycles", [0, 600, 6000])
def test_tigr_wins_across_launch_overheads(graph, source, launch_cycles):
    config = GPUConfig(kernel_launch_cycles=launch_cycles)
    base, tigr = run_pair(graph, source, config, KernelProfile())
    assert tigr.metrics.total_time_ms <= base.metrics.total_time_ms


def test_iteration_claims_are_cost_free(graph, source):
    """The Table 8 iteration shape needs no cost model at all."""
    options = EngineOptions(worklist=True)
    original = sssp(NodeScheduler(graph), source, options=options)
    virtual = sssp(
        VirtualScheduler(virtual_transform(graph, 8)), source, options=options
    )
    physical_graph = udt_transform(graph, 8).graph
    physical = sssp(NodeScheduler(physical_graph), source, options=options)
    assert virtual.num_iterations == original.num_iterations
    assert physical.num_iterations > original.num_iterations


def test_coalescing_gain_positive_across_transaction_costs(graph, source):
    """Tigr-V+ <= Tigr-V at any memory-cost setting; the gap widens as
    transactions get more expensive (it is a memory optimization)."""
    gaps = []
    for cost in (1.0, 3.0, 9.0):
        profile = KernelProfile(cycles_per_transaction=cost)
        times = {}
        for coalesced in (False, True):
            sim = GPUSimulator(GPUConfig(), profile)
            virtual = virtual_transform(graph, 10, coalesced=coalesced)
            result = sssp(VirtualScheduler(virtual), source, simulator=sim)
            times[coalesced] = result.metrics.total_time_ms
        assert times[True] <= times[False]
        gaps.append(times[False] / times[True])
    assert gaps[-1] > gaps[0]
