"""Unit tests for the Table 3 dataset stand-ins."""

import pytest

from repro.errors import DatasetError
from repro.graph.datasets import DATASETS, DEFAULT_SEED, dataset_names, load_dataset
from repro.graph.stats import degree_stats


class TestSpecs:
    def test_six_datasets_in_table3_order(self):
        assert dataset_names() == (
            "pokec", "livejournal", "hollywood", "orkut", "sinaweibo", "twitter"
        )

    def test_paper_sizes_recorded(self):
        assert DATASETS["twitter"].paper_edges == 530_000_000
        assert DATASETS["sinaweibo"].paper_nodes == 59_000_000

    def test_size_ordering_matches_paper(self):
        """The stand-ins preserve the paper's edge-count ordering."""
        order = [DATASETS[n].target_edges for n in dataset_names()]
        paper = [DATASETS[n].paper_edges for n in dataset_names()]
        assert sorted(range(6), key=lambda i: order[i]) == sorted(
            range(6), key=lambda i: paper[i]
        )

    def test_mean_degree_property(self):
        spec = DATASETS["pokec"]
        assert spec.mean_degree == pytest.approx(spec.target_edges / spec.num_nodes)


class TestLoad:
    def test_unknown_dataset(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            load_dataset("facebook")

    def test_bad_scale(self):
        with pytest.raises(DatasetError, match="scale"):
            load_dataset("pokec", scale=0)

    def test_case_insensitive(self):
        assert load_dataset("Pokec", scale=0.1) == load_dataset("pokec", scale=0.1)

    def test_deterministic_default_seed(self):
        assert load_dataset("pokec", scale=0.1) == load_dataset(
            "pokec", scale=0.1, seed=DEFAULT_SEED
        )

    def test_seed_changes_graph(self):
        assert load_dataset("pokec", scale=0.1, seed=1) != load_dataset(
            "pokec", scale=0.1, seed=2
        )

    def test_weighted_by_default(self):
        assert load_dataset("pokec", scale=0.1).is_weighted

    def test_unweighted_option(self):
        assert not load_dataset("pokec", scale=0.1, weighted=False).is_weighted

    def test_scale_shrinks(self):
        small = load_dataset("pokec", scale=0.1)
        full = load_dataset("pokec", scale=1.0)
        assert small.num_nodes < full.num_nodes
        assert small.num_edges < full.num_edges

    def test_edge_count_near_target(self):
        for name in ("pokec", "livejournal"):
            g = load_dataset(name)
            target = DATASETS[name].target_edges
            assert abs(g.num_edges - target) / target < 0.2

    def test_power_law_shape(self):
        """All stand-ins are genuinely irregular (the paper's premise)."""
        for name in dataset_names():
            g = load_dataset(name)
            stats = degree_stats(g)
            assert stats.coefficient_of_variation > 1.0, name
            assert stats.max_degree > 10 * stats.mean_degree, name

    def test_rmat_dataset(self):
        g = load_dataset("twitter", scale=0.1)
        assert g.num_nodes == 2100
