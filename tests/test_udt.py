"""Unit + property tests for the UDT transformation (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import (
    logarithmic_height_bound,
    predict_properties,
    udt_new_nodes,
    udt_tree_height,
)
from repro.core.properties import check_split_transformation
from repro.core.udt import udt_transform
from repro.core.weights import DumbWeight
from repro.errors import TransformError
from repro.graph.generators import rmat, star


class TestFigure6Example:
    """The paper's Figure 6: degree-5 node, K=3."""

    def test_one_new_node_no_residuals(self):
        result = udt_transform(star(5), 3)
        assert result.stats.new_nodes == 1
        assert result.stats.new_edges == 1
        # the family has no residual beyond possibly the root:
        # new node has exactly degree 3, root has degree 3 (2 leaves + new node)
        degrees = result.graph.out_degrees()
        assert degrees[0] == 3
        assert degrees[6] == 3

    def test_hops(self):
        assert udt_transform(star(5), 3).stats.max_family_hops == 1


class TestBasics:
    def test_no_high_degree_nodes_is_identity_like(self, regular_graph):
        result = udt_transform(regular_graph, 10)
        assert result.stats.new_nodes == 0
        assert result.graph.num_nodes == regular_graph.num_nodes
        assert np.array_equal(result.graph.targets, regular_graph.targets)

    def test_degree_bound_enforced(self, powerlaw_graph):
        for k in (2, 4, 16):
            result = udt_transform(powerlaw_graph, k)
            assert result.graph.max_out_degree() <= k

    def test_k_below_two_rejected(self, powerlaw_graph):
        with pytest.raises(TransformError, match="K >= 2"):
            udt_transform(powerlaw_graph, 1)
        with pytest.raises(TransformError):
            udt_transform(powerlaw_graph, 0)

    def test_at_most_one_residual_per_family(self, powerlaw_graph):
        """The UDT selling point over recursive T_star (Figure 6)."""
        k = 4
        result = udt_transform(powerlaw_graph, k)
        degrees = result.graph.out_degrees()
        for root, members in result.families().items():
            residuals = int(np.sum(degrees[members] < k))
            assert residuals <= 1, f"family of {root} has {residuals} residuals"

    def test_definition2_contract(self, powerlaw_graph):
        result = udt_transform(powerlaw_graph, 5)
        check_split_transformation(powerlaw_graph, result)

    def test_incoming_edges_stay_at_root(self, powerlaw_graph):
        result = udt_transform(powerlaw_graph, 4)
        n = powerlaw_graph.num_nodes
        original_edges = result.graph.targets[~result.new_edge_mask]
        assert np.all(original_edges < n)

    def test_node_origin_shape(self, powerlaw_graph):
        result = udt_transform(powerlaw_graph, 4)
        assert len(result.node_origin) == result.graph.num_nodes
        n = powerlaw_graph.num_nodes
        assert np.array_equal(result.node_origin[:n], np.arange(n))
        assert np.all(result.node_origin[n:] < n)

    def test_read_values_projects_roots(self, powerlaw_graph):
        result = udt_transform(powerlaw_graph, 4)
        values = np.arange(result.graph.num_nodes, dtype=float)
        assert np.array_equal(
            result.read_values(values), np.arange(powerlaw_graph.num_nodes)
        )


class TestDumbWeights:
    def test_zero_policy_weights(self, star5_graph):
        result = udt_transform(star5_graph, 3, dumb_weight=DumbWeight.ZERO)
        w = result.graph.weights
        assert np.all(w[result.new_edge_mask] == 0.0)
        assert np.all(w[~result.new_edge_mask] == 1.0)  # promoted unweighted

    def test_infinity_policy_weights(self, powerlaw_graph):
        result = udt_transform(powerlaw_graph, 4, dumb_weight=DumbWeight.INFINITY)
        w = result.graph.weights
        assert np.all(np.isinf(w[result.new_edge_mask]))
        assert np.all(np.isfinite(w[~result.new_edge_mask]))

    def test_none_policy_keeps_unweighted(self, powerlaw_unweighted):
        result = udt_transform(powerlaw_unweighted, 4, dumb_weight=DumbWeight.NONE)
        assert not result.graph.is_weighted

    def test_original_weights_preserved(self, powerlaw_graph):
        result = udt_transform(powerlaw_graph, 4)
        got = np.sort(result.graph.weights[~result.new_edge_mask])
        want = np.sort(powerlaw_graph.weights)
        assert np.allclose(got, want)


class TestAnalysisConsistency:
    @pytest.mark.parametrize("d,k", [(5, 3), (10, 3), (100, 4), (1000, 10), (17, 2)])
    def test_counts_match_closed_form(self, d, k):
        result = udt_transform(star(d), k)
        assert result.stats.new_nodes == udt_new_nodes(d, k)
        assert result.stats.new_edges == udt_new_nodes(d, k)
        assert result.stats.max_family_hops == udt_tree_height(d, k)

    def test_logarithmic_height(self):
        """P3: the tree height grows logarithmically in d."""
        for d in (100, 1000, 10_000, 100_000):
            for k in (2, 4, 16):
                assert udt_tree_height(d, k) <= logarithmic_height_bound(d, k)

    def test_predict_properties_udt(self):
        p = predict_properties("udt", 100, 4)
        assert p.new_nodes == udt_new_nodes(100, 4)
        assert p.new_degree == 4

    def test_udt_new_nodes_k1_rejected(self):
        with pytest.raises(TransformError):
            udt_new_nodes(5, 1)
        with pytest.raises(TransformError):
            udt_tree_height(5, 1)

    def test_no_split_needed(self):
        assert udt_new_nodes(3, 5) == 0
        assert udt_tree_height(3, 5) == 0


@given(
    d=st.integers(min_value=2, max_value=400),
    k=st.integers(min_value=2, max_value=20),
)
@settings(max_examples=80, deadline=None)
def test_udt_star_properties(d, k):
    """Property: for any (d, K), UDT on a degree-d node yields a
    uniform-degree tree: bound respected, counts match the closed
    forms, at most one residual node, original neighbors preserved."""
    graph = star(d)
    result = udt_transform(graph, k)
    degrees = result.graph.out_degrees()
    assert degrees.max() <= k
    if d > k:
        assert result.stats.new_nodes == udt_new_nodes(d, k)
        assert result.stats.max_family_hops == udt_tree_height(d, k)
        # every split node has exactly degree k except at most one
        split_degrees = degrees[degrees > 0]
        assert int(np.sum(split_degrees < k)) <= 1
    # all original leaf targets still reachable as targets of original edges
    original_targets = np.sort(result.graph.targets[~result.new_edge_mask])
    assert np.array_equal(original_targets, np.arange(1, d + 1))


@given(
    seed=st.integers(min_value=0, max_value=50),
    k=st.integers(min_value=2, max_value=12),
)
@settings(max_examples=40, deadline=None)
def test_udt_random_graph_contract(seed, k):
    """Property: Definition 2 holds for UDT on arbitrary graphs."""
    graph = rmat(60, 600, seed=seed, weight_range=(1, 8))
    result = udt_transform(graph, k)
    check_split_transformation(graph, result)
    assert result.graph.max_out_degree() <= k
