"""Fuzzing construction paths: invalid input never crashes, it raises.

Library boundary robustness: arbitrary arrays fed to the CSR
constructor and the builders must either produce a valid graph or
raise :class:`~repro.errors.GraphError` — never an unrelated
exception, never a corrupt graph.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError, TigrError
from repro.graph.builder import deduplicate_edges, from_arrays, to_undirected
from repro.graph.csr import CSRGraph


@given(
    offsets=st.lists(st.integers(min_value=-3, max_value=30), min_size=1, max_size=12),
    targets=st.lists(st.integers(min_value=-2, max_value=15), max_size=25),
)
@settings(max_examples=200, deadline=None)
def test_csr_constructor_validates_or_builds(offsets, targets):
    offsets_arr = np.asarray(offsets, dtype=np.int64)
    targets_arr = np.asarray(targets, dtype=np.int64)
    try:
        graph = CSRGraph(offsets_arr, targets_arr)
    except GraphError:
        return  # rejection is the contract
    # accepted: the graph must be internally consistent
    assert graph.num_nodes == len(offsets) - 1
    assert graph.num_edges == len(targets)
    degrees = graph.out_degrees()
    assert degrees.sum() == graph.num_edges
    assert (degrees >= 0).all()
    for node in range(graph.num_nodes):
        nbrs = graph.neighbors(node)
        assert np.all((nbrs >= 0) & (nbrs < graph.num_nodes))


@given(
    edges=st.lists(
        st.tuples(st.integers(-2, 12), st.integers(-2, 12)), max_size=30
    ),
    num_nodes=st.one_of(st.none(), st.integers(min_value=-1, max_value=20)),
)
@settings(max_examples=200, deadline=None)
def test_from_arrays_validates_or_builds(edges, num_nodes):
    src = np.asarray([e[0] for e in edges], dtype=np.int64)
    dst = np.asarray([e[1] for e in edges], dtype=np.int64)
    try:
        graph = from_arrays(src, dst, num_nodes=num_nodes)
    except TigrError:
        return
    assert graph.num_edges == len(edges)
    # every input edge present
    built = sorted(graph.iter_edges())
    assert built == sorted((int(a), int(b)) for a, b in edges)


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 10), st.integers(0, 10)), max_size=25
    )
)
@settings(max_examples=100, deadline=None)
def test_to_undirected_always_symmetric(edges):
    graph = from_arrays(
        np.asarray([e[0] for e in edges], dtype=np.int64),
        np.asarray([e[1] for e in edges], dtype=np.int64),
        num_nodes=11,
    )
    sym = to_undirected(graph)
    assert np.array_equal(sym.out_degrees(), sym.in_degrees())
    forward = set(sym.iter_edges())
    assert all((b, a) in forward for a, b in forward)
    # dedup idempotence
    assert deduplicate_edges(sym) == sym
