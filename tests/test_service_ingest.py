"""Trace format: parse/format round-trips, reader sources, recorder."""

import io
import json
import socketserver
import threading

import numpy as np
import pytest

from repro.errors import TraceFormatError, TraceVersionError
from repro.service import (
    TRACE_VERSION,
    AnalyticsService,
    GraphCatalog,
    QueryRequest,
    TraceReader,
    TraceRecorder,
    dataset_graph_entry,
    load_trace,
    result_digest,
)
from repro.service.ingest import (
    TraceHeader,
    TraceRequest,
    TraceResult,
    format_trace_line,
    parse_trace_line,
)
from repro.service.query import QueryResult


HEADER_LINE = json.dumps(
    {"type": "header", "version": TRACE_VERSION, "graphs": {}}
)
REQUEST_LINE = json.dumps(
    {
        "type": "request", "id": 1, "algorithm": "bfs", "graph": "g",
        "sources": [0], "transform": "udt", "k": 0,
        "timeout_s": None, "delta_s": 0.5,
    }
)
RESULT_LINE = json.dumps(
    {"type": "result", "id": 1, "digest": "sha256:00", "ok": True}
)


class TestParseLine:
    def test_blank_and_comment_lines_are_none(self):
        assert parse_trace_line("") is None
        assert parse_trace_line("   \n") is None
        assert parse_trace_line("# a comment") is None

    def test_header_round_trip(self):
        header = TraceHeader(
            graphs={"g": dataset_graph_entry("pokec", scale=0.5)},
            note="hi",
        )
        parsed = parse_trace_line(format_trace_line(header))
        assert parsed == header

    def test_request_round_trip(self):
        request = TraceRequest(
            trace_id=3, algorithm="sssp", graph="g", sources=(4, 5),
            transform="virtual", degree_bound=8, timeout_s=1.5,
            delta_s=0.25,
        )
        parsed = parse_trace_line(format_trace_line(request))
        assert parsed == request

    def test_result_round_trip(self):
        result = TraceResult(
            trace_id=3, digest="sha256:ab", ok=False,
            error="timed out in queue", transform="none",
            degraded=True, cache_hit=False, elapsed_s=0.125,
        )
        parsed = parse_trace_line(format_trace_line(result))
        assert parsed == result

    def test_request_defaults(self):
        parsed = parse_trace_line(
            '{"type": "request", "id": 1, "algorithm": "pr", "graph": "g"}'
        )
        assert parsed.sources == ()
        assert parsed.transform == "auto"
        assert parsed.timeout_s is None
        assert parsed.delta_s == 0.0

    @pytest.mark.parametrize(
        "text",
        [
            "{not json",
            "[1, 2, 3]",
            '{"type": "frobnicate"}',
            '{"type": "request", "id": 1, "graph": "g"}',
            '{"type": "request", "id": 1, "algorithm": "dijkstra", "graph": "g"}',
            '{"type": "request", "id": 1, "algorithm": "bfs", "graph": ""}',
            '{"type": "request", "id": 1, "algorithm": "bfs", "graph": "g",'
            ' "sources": ["a"]}',
            '{"type": "request", "id": 1, "algorithm": "bfs", "graph": "g",'
            ' "transform": "cliq"}',
            '{"type": "request", "id": 1, "algorithm": "bfs", "graph": "g",'
            ' "timeout_s": 0}',
            '{"type": "request", "id": 1, "algorithm": "bfs", "graph": "g",'
            ' "delta_s": -1}',
            '{"type": "result", "id": 1}',
            '{"type": "result", "id": 1, "digest": "nocolon"}',
            '{"type": "header"}',
        ],
    )
    def test_malformed_lines_raise_typed_error(self, text):
        with pytest.raises(TraceFormatError):
            parse_trace_line(text)

    def test_error_carries_line_and_source(self):
        with pytest.raises(TraceFormatError, match=r"t\.jsonl:7"):
            parse_trace_line("{oops", line=7, source="t.jsonl")

    def test_unsupported_version(self):
        with pytest.raises(TraceVersionError) as excinfo:
            parse_trace_line('{"type": "header", "version": 99}')
        assert excinfo.value.found == 99
        assert excinfo.value.supported == TRACE_VERSION
        # it is also a TraceFormatError, so one except clause catches both
        assert isinstance(excinfo.value, TraceFormatError)


class TestTraceReader:
    def _text(self, *lines):
        return "\n".join(lines) + "\n"

    def test_reads_from_file_object(self):
        stream = io.StringIO(self._text(HEADER_LINE, REQUEST_LINE, RESULT_LINE))
        with TraceReader(stream) as reader:
            events = list(reader)
        assert isinstance(events[0], TraceHeader)
        assert isinstance(events[1], TraceRequest)
        assert isinstance(events[2], TraceResult)
        assert reader.header == events[0]
        assert reader.lines_read == 3

    def test_reads_from_path(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(self._text(HEADER_LINE, REQUEST_LINE))
        with TraceReader(str(path)) as reader:
            assert len(list(reader)) == 2

    def test_reads_from_tcp_socket(self):
        payload = self._text(HEADER_LINE, REQUEST_LINE, RESULT_LINE).encode()

        class Handler(socketserver.BaseRequestHandler):
            def handle(self):
                self.request.sendall(payload)

        with socketserver.TCPServer(("127.0.0.1", 0), Handler) as server:
            port = server.server_address[1]
            thread = threading.Thread(target=server.handle_request)
            thread.start()
            try:
                with TraceReader(f"tcp://127.0.0.1:{port}") as reader:
                    events = list(reader)
            finally:
                thread.join()
        assert len(events) == 3
        assert isinstance(events[1], TraceRequest)

    def test_bad_socket_url(self):
        with pytest.raises(TraceFormatError, match="tcp://host:port"):
            TraceReader("tcp://noport")

    def test_missing_file(self):
        with pytest.raises(TraceFormatError, match="cannot open"):
            TraceReader("/nonexistent/trace.jsonl")

    def test_unknown_policy(self):
        with pytest.raises(TraceFormatError, match="policy"):
            TraceReader(io.StringIO(""), on_malformed="ignore")

    def test_strict_raises_with_line_number(self):
        stream = io.StringIO(self._text(HEADER_LINE, "{broken"))
        with pytest.raises(TraceFormatError, match=":2"):
            list(TraceReader(stream))

    def test_skip_counts_and_continues(self):
        stream = io.StringIO(
            self._text(HEADER_LINE, "{broken", REQUEST_LINE, "also broken")
        )
        reader = TraceReader(stream, on_malformed="skip")
        events = list(reader)
        assert len(events) == 2
        assert reader.lines_skipped == 2

    def test_version_error_raised_even_under_skip(self):
        stream = io.StringIO(
            self._text('{"type": "header", "version": 99}', REQUEST_LINE)
        )
        with pytest.raises(TraceVersionError):
            list(TraceReader(stream, on_malformed="skip"))

    def test_header_must_be_first(self):
        stream = io.StringIO(self._text(REQUEST_LINE, HEADER_LINE))
        with pytest.raises(TraceFormatError, match="first event"):
            list(TraceReader(stream))

    def test_headerless_trace_is_current_version(self):
        trace = load_trace(io.StringIO(self._text(REQUEST_LINE)))
        assert trace.header.version == TRACE_VERSION
        assert len(trace.requests) == 1
        assert not trace.has_digests

    def test_does_not_close_caller_stream(self):
        stream = io.StringIO(self._text(HEADER_LINE))
        with TraceReader(stream) as reader:
            list(reader)
        assert not stream.closed

    def test_load_trace_keys_results_by_id(self):
        trace = load_trace(
            io.StringIO(self._text(HEADER_LINE, REQUEST_LINE, RESULT_LINE))
        )
        assert trace.has_digests
        assert trace.results[1].digest == "sha256:00"
        assert trace.requests[0].trace_id == 1


class TestToQueryRequest:
    def test_round_trip_fields(self):
        record = TraceRequest(
            trace_id=9, algorithm="sssp", graph="g", sources=(1, 2),
            transform="udt", degree_bound=4, timeout_s=2.0,
        )
        request = record.to_query_request()
        assert request.algorithm == "sssp"
        assert request.graph == "g"
        assert request.sources == (1, 2)
        assert request.transform == "udt"
        assert request.degree_bound == 4
        assert request.timeout_s == 2.0

    def test_graph_override(self):
        record = TraceRequest(trace_id=1, algorithm="pr", graph="old")
        assert record.to_query_request("new").graph == "new"


class TestResultDigest:
    def _result(self, values, error=None):
        return QueryResult(
            request_id=1, algorithm="bfs", values=values,
            transform="none", degree_bound=0, error=error,
        )

    def test_deterministic(self):
        values = {0: np.arange(5, dtype=np.int64)}
        assert result_digest(self._result(values)) == result_digest(
            self._result({0: np.arange(5, dtype=np.int64)})
        )

    def test_covers_values(self):
        a = result_digest(self._result({0: np.array([1, 2, 3])}))
        b = result_digest(self._result({0: np.array([1, 2, 4])}))
        assert a != b

    def test_covers_dtype(self):
        a = result_digest(self._result({0: np.array([1], dtype=np.int32)}))
        b = result_digest(self._result({0: np.array([1], dtype=np.int64)}))
        assert a != b

    def test_covers_error_text(self):
        a = result_digest(self._result({}, error="timed out in queue"))
        b = result_digest(self._result({}, error="cancelled"))
        assert a != b

    def test_source_order_insensitive(self):
        one = {0: np.array([1]), 5: np.array([2])}
        two = {5: np.array([2]), 0: np.array([1])}
        assert result_digest(self._result(one)) == result_digest(
            self._result(two)
        )

    def test_prefix(self):
        assert result_digest(self._result({})).startswith("sha256:")


class TestTraceRecorder:
    def test_header_written_on_attach(self):
        sink = io.StringIO()
        TraceRecorder(sink, graphs={"g": {"dataset": "pokec"}}, note="n")
        first = json.loads(sink.getvalue().splitlines()[0])
        assert first["type"] == "header"
        assert first["version"] == TRACE_VERSION
        assert first["graphs"] == {"g": {"dataset": "pokec"}}
        assert first["note"] == "n"

    def test_capture_through_service(self, powerlaw_graph):
        sink = io.StringIO()
        recorder = TraceRecorder(sink)
        with AnalyticsService(
            GraphCatalog(), workers=2, recorder=recorder
        ) as service:
            service.register("g", powerlaw_graph)
            requests = [
                QueryRequest.single("bfs", "g", s, transform="udt")
                for s in (0, 1, 2, 3)
            ]
            tickets = service.submit_batch(requests)
            results = [t.result(60.0) for t in tickets]
            assert all(r.ok for r in results)
            assert service.metrics.trace_requests == 4
            assert service.metrics.trace_results == 4
        assert recorder.requests_recorded == 4
        assert recorder.results_recorded == 4
        trace = load_trace(io.StringIO(sink.getvalue()))
        assert [r.sources for r in trace.requests] == [(0,), (1,), (2,), (3,)]
        for request, result in zip(requests, results):
            assert trace.results[request.request_id].digest == result_digest(
                result
            )

    def test_detach_stops_capture(self, powerlaw_graph):
        sink = io.StringIO()
        recorder = TraceRecorder(sink)
        with AnalyticsService(GraphCatalog(), workers=1) as service:
            service.register("g", powerlaw_graph)
            service.attach_recorder(recorder)
            assert service.run(QueryRequest.single("bfs", "g", 0)).ok
            service.detach_recorder(recorder)
            assert service.run(QueryRequest.single("bfs", "g", 1)).ok
        assert recorder.requests_recorded == 1
        assert recorder.results_recorded == 1

    def test_thread_safe_interleaving(self):
        sink = io.StringIO()
        recorder = TraceRecorder(sink)

        def hammer(base):
            for i in range(25):
                request = QueryRequest.single("bfs", "g", 0)
                recorder.record_request(request, graph_name="g")
                recorder.record_result(
                    request,
                    QueryResult(
                        request_id=request.request_id, algorithm="bfs",
                        values={0: np.array([base + i])},
                        transform="none", degree_bound=0,
                    ),
                )

        threads = [
            threading.Thread(target=hammer, args=(t * 100,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # every line must still be valid JSON (no torn writes), and the
        # stream must load as a complete trace
        trace = load_trace(io.StringIO(sink.getvalue()))
        assert len(trace.requests) == 100
        assert len(trace.results) == 100
        assert recorder.requests_recorded == 100

    def test_deltas_nonnegative_and_ordered(self):
        sink = io.StringIO()
        recorder = TraceRecorder(sink)
        for s in range(3):
            recorder.record_request(
                QueryRequest.single("bfs", "g", s), graph_name="g"
            )
        trace = load_trace(io.StringIO(sink.getvalue()))
        assert trace.requests[0].delta_s == 0.0
        assert all(r.delta_s >= 0 for r in trace.requests)

    def test_owns_path_sink(self, tmp_path):
        path = tmp_path / "cap.jsonl"
        with TraceRecorder(str(path)) as recorder:
            recorder.record_request(
                QueryRequest.single("bfs", "g", 0), graph_name="g"
            )
        trace = load_trace(str(path))
        assert len(trace.requests) == 1


class TestDatasetGraphEntry:
    def test_minimal(self):
        entry = dataset_graph_entry("pokec")
        assert entry == {"dataset": "pokec", "scale": 1.0, "weighted": True}

    def test_full(self):
        entry = dataset_graph_entry(
            "pokec", scale=2.0, weighted=False, seed=5, fingerprint="ab"
        )
        assert entry["seed"] == 5
        assert entry["fingerprint"] == "ab"


class TestSocketDisconnectHardening:
    """A peer dying mid-record must hit the malformed policy, not
    escape as a raw decode error (``tcp://`` sources only — a file's
    last line may legitimately lack a newline)."""

    def _serve(self, payload: bytes):
        class Handler(socketserver.BaseRequestHandler):
            def handle(self):
                self.request.sendall(payload)

        server = socketserver.TCPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=server.handle_request)
        thread.start()
        return server, thread

    def _read_all(self, payload, *, on_malformed):
        server, thread = self._serve(payload)
        port = server.server_address[1]
        try:
            with TraceReader(
                f"tcp://127.0.0.1:{port}", on_malformed=on_malformed
            ) as reader:
                return list(reader), reader
        finally:
            thread.join()
            server.server_close()

    def test_truncated_final_line_skips(self):
        payload = (HEADER_LINE + "\n" + REQUEST_LINE + "\n").encode()
        payload += RESULT_LINE[: len(RESULT_LINE) // 2].encode()  # cut mid-record
        events, reader = self._read_all(payload, on_malformed="skip")
        assert len(events) == 2  # header + request survived
        assert reader.lines_skipped == 1

    def test_truncated_final_line_strict(self):
        payload = (HEADER_LINE + "\n").encode() + REQUEST_LINE[:10].encode()
        server, thread = self._serve(payload)
        port = server.server_address[1]
        try:
            with TraceReader(f"tcp://127.0.0.1:{port}") as reader:
                with pytest.raises(TraceFormatError, match="truncated final line"):
                    list(reader)
        finally:
            thread.join()
            server.server_close()

    def test_undecodable_line_skips(self):
        # a line cut inside a multi-byte UTF-8 sequence, then re-joined
        # with later traffic: invalid bytes, but newline-terminated
        payload = (HEADER_LINE + "\n").encode()
        payload += b'{"type": "request\xc3\x28"}\n'
        payload += (REQUEST_LINE + "\n").encode()
        events, reader = self._read_all(payload, on_malformed="skip")
        assert len(events) == 2
        assert reader.lines_skipped == 1
        assert isinstance(events[1], TraceRequest)

    def test_undecodable_line_strict(self):
        payload = (HEADER_LINE + "\n").encode() + b"\xff\xfe\n"
        server, thread = self._serve(payload)
        port = server.server_address[1]
        try:
            with TraceReader(f"tcp://127.0.0.1:{port}") as reader:
                with pytest.raises(TraceFormatError, match="not valid UTF-8"):
                    list(reader)
        finally:
            thread.join()
            server.server_close()

    def test_file_final_line_without_newline_still_parses(self, tmp_path):
        # the policy is socket-specific: a file ending without a
        # trailing newline is ordinary and must keep parsing
        path = tmp_path / "t.jsonl"
        path.write_text(HEADER_LINE + "\n" + REQUEST_LINE)  # no final \n
        with TraceReader(str(path)) as reader:
            events = list(reader)
        assert len(events) == 2
        assert reader.lines_skipped == 0


class TestRecorderSwapUnderLoad:
    """Swapping recorders mid-stream must never drop or double-record
    a result: attach replaces atomically, so every resolution lands in
    exactly one sink."""

    def test_attach_detach_swap_exactly_once(self, powerlaw_graph):
        sinks = [io.StringIO(), io.StringIO()]
        recorders = [TraceRecorder(sink) for sink in sinks]
        stop = threading.Event()

        with AnalyticsService(GraphCatalog(), workers=2) as service:
            service.register("g", powerlaw_graph)
            service.attach_recorder(recorders[0])

            def swapper():
                flip = 0
                while not stop.is_set():
                    flip += 1
                    service.attach_recorder(recorders[flip % 2])

            thread = threading.Thread(target=swapper)
            thread.start()
            try:
                requests = [
                    QueryRequest.single("bfs", "g", s % 16) for s in range(64)
                ]
                tickets = service.submit_batch(requests)
                results = [t.result(60.0) for t in tickets]
            finally:
                stop.set()
                thread.join()
            service.detach_recorder()
            assert all(r.ok for r in results)

        recorded_ids = []
        for sink in sinks:
            trace = load_trace(io.StringIO(sink.getvalue()))
            recorded_ids.extend(trace.results)
        # exactly once across the union of sinks: nothing dropped
        # (every request resolved with some recorder attached) and
        # nothing doubled (one resolution hook, one attached recorder)
        assert sorted(recorded_ids) == sorted(r.request_id for r in requests)

    def test_detach_specific_recorder_only_if_attached(self, powerlaw_graph):
        first, second = TraceRecorder(io.StringIO()), TraceRecorder(io.StringIO())
        with AnalyticsService(GraphCatalog(), workers=1) as service:
            service.register("g", powerlaw_graph)
            service.attach_recorder(first)
            service.attach_recorder(second)  # replaces first
            service.detach_recorder(first)   # no-op: first not attached
            assert service.run(QueryRequest.single("bfs", "g", 0)).ok
        assert second.results_recorded == 1
        assert first.results_recorded == 0
