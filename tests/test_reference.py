"""Sanity tests for the CPU oracles on hand-checkable graphs."""

import numpy as np
import pytest

from repro.algorithms.reference import (
    reference_bc,
    reference_bfs,
    reference_connected_components,
    reference_pagerank,
    reference_sssp,
    reference_sswp,
)
from repro.errors import GraphError
from repro.graph.builder import from_edge_list, to_undirected


@pytest.fixture
def weighted_triangle():
    return from_edge_list([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)])


class TestBFSOracle:
    def test_hops(self, diamond_graph):
        assert reference_bfs(diamond_graph, 0).tolist() == [0, 1, 1, 2]

    def test_unreachable_is_inf(self):
        g = from_edge_list([(0, 1)], num_nodes=3)
        assert reference_bfs(g, 0)[2] == np.inf

    def test_bad_source(self, diamond_graph):
        with pytest.raises(GraphError):
            reference_bfs(diamond_graph, 99)


class TestSSSPOracle:
    def test_prefers_cheap_path(self, weighted_triangle):
        assert reference_sssp(weighted_triangle, 0).tolist() == [0.0, 1.0, 2.0]

    def test_unweighted_is_bfs(self, diamond_graph):
        assert np.array_equal(
            reference_sssp(diamond_graph, 0), reference_bfs(diamond_graph, 0)
        )

    def test_negative_weight_rejected(self):
        g = from_edge_list([(0, 1, -1.0)])
        with pytest.raises(GraphError, match="non-negative"):
            reference_sssp(g, 0)

    def test_figure8_example(self):
        """The paper's Figure 8: distance A->B is 6 via the weighted path."""
        # A=0 with edges of weights 1,2,3,4 to nodes 1..4; B=5; the
        # shortest A->B path in the figure totals 6.
        g = from_edge_list([
            (0, 1, 1.0), (0, 2, 2.0), (0, 3, 3.0), (0, 4, 4.0),
            (2, 5, 4.0), (3, 5, 3.0), (4, 5, 2.0),
        ])
        assert reference_sssp(g, 0)[5] == 6.0


class TestSSWPOracle:
    def test_bottleneck(self):
        g = from_edge_list([(0, 1, 9.0), (1, 2, 1.0), (0, 3, 3.0), (3, 2, 3.0)])
        width = reference_sswp(g, 0)
        assert width[2] == 3.0
        assert width[0] == np.inf
        assert width[1] == 9.0

    def test_unreachable_is_minus_inf(self):
        g = from_edge_list([(0, 1, 1.0)], num_nodes=3)
        assert reference_sswp(g, 0)[2] == -np.inf


class TestCCOracle:
    def test_two_components(self):
        g = to_undirected(from_edge_list([(0, 1), (2, 3)]))
        assert reference_connected_components(g).tolist() == [0, 0, 2, 2]

    def test_labels_are_minima(self):
        g = to_undirected(from_edge_list([(3, 1), (1, 2)]))
        labels = reference_connected_components(g)
        assert labels.tolist() == [0, 1, 1, 1]


class TestBCOracle:
    def test_diamond_single_source(self, diamond_graph):
        bc = reference_bc(diamond_graph, 0)
        assert bc[1] == pytest.approx(0.5)
        assert bc[2] == pytest.approx(0.5)
        assert bc[0] == 0.0

    def test_all_sources_line(self):
        g = from_edge_list([(0, 1), (1, 2)])
        bc = reference_bc(g)
        # node 1 sits on the single 0->2 path
        assert bc.tolist() == [0.0, 1.0, 0.0]

    def test_bad_source(self, diamond_graph):
        with pytest.raises(GraphError):
            reference_bc(diamond_graph, -1)


class TestPageRankOracle:
    def test_sums_to_one(self, powerlaw_unweighted):
        assert reference_pagerank(powerlaw_unweighted).sum() == pytest.approx(1.0)

    def test_sink_receives_more(self):
        g = from_edge_list([(0, 2), (1, 2)], num_nodes=3)
        ranks = reference_pagerank(g)
        assert ranks[2] > ranks[0]

    def test_empty(self):
        assert reference_pagerank(from_edge_list([], num_nodes=0)).shape == (0,)

    def test_convergence_flag_via_iterations(self):
        # a tiny graph converges well before 100 iterations
        g = from_edge_list([(0, 1), (1, 0)])
        a = reference_pagerank(g, max_iterations=100)
        b = reference_pagerank(g, max_iterations=1000)
        assert np.allclose(a, b)
