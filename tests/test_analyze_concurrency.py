"""Tests for the concurrency rule pack (ASYNC001-005, LOCK004).

Mirrors the SPLIT/LOCK fixture pattern in ``tests/test_analyze.py``:
each rule gets a seeded violation caught at the right file:line and a
near-miss that must stay quiet — the safe idioms the service tier
actually uses (``call_soon_threadsafe`` bridging, loop-side nested
helpers, guarded-method calls) are the negative cases.
"""

import textwrap

from repro.analyze import analyze_paths


def write_fixture(tmp_path, name, body):
    path = tmp_path / name
    path.write_text(textwrap.dedent(body))
    return str(path)


def rule_ids(report):
    return [finding.rule_id for finding in report.findings]


def findings_for(report, rule_id):
    return [f for f in report.findings if f.rule_id == rule_id]


# ----------------------------------------------------------------------
# ASYNC001 — blocking calls reachable from async defs
# ----------------------------------------------------------------------
class TestBlockingReachable:
    def test_direct_blocking_call(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "direct.py",
            """
            import time

            async def handler():
                time.sleep(0.5)
            """,
        )
        report = analyze_paths([path])
        (finding,) = findings_for(report, "ASYNC001")
        assert finding.line == 5
        assert "time.sleep" in finding.message
        assert "handler" in finding.message

    def test_transitive_blocking_call_names_the_chain(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "transitive.py",
            """
            import queue

            class Service:
                def __init__(self):
                    self._queue = queue.Queue()

                def submit(self, item):
                    self._queue.put(item)

            def relay(service: Service, item):
                service.submit(item)

            async def handler(service: Service, item):
                relay(service, item)
            """,
        )
        report = analyze_paths([path])
        (finding,) = findings_for(report, "ASYNC001")
        assert finding.line == 9  # anchored at the blocking call site
        assert "queue.Queue.put" in finding.message
        assert "handler" in finding.message
        assert "relay" in finding.message

    def test_not_reachable_stays_quiet(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "quiet.py",
            """
            import time

            def worker_loop():
                time.sleep(0.5)

            async def handler():
                return 1
            """,
        )
        report = analyze_paths([path])
        assert findings_for(report, "ASYNC001") == []

    def test_with_lock_statement_is_not_a_blocking_call(self, tmp_path):
        # brief `with lock:` holds are the metrics idiom; only explicit
        # .acquire() calls and ASYNC002 (held across await) fire
        path = write_fixture(
            tmp_path,
            "withlock.py",
            """
            import threading

            class Metrics:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self._lock:
                        self.count += 1

            async def handler(metrics: Metrics):
                metrics.bump()
            """,
        )
        report = analyze_paths([path])
        assert findings_for(report, "ASYNC001") == []

    def test_explicit_acquire_fires(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "acquire.py",
            """
            import threading

            _lock = threading.Lock()

            async def handler():
                lock = threading.Lock()
                lock.acquire()
            """,
        )
        report = analyze_paths([path])
        (finding,) = findings_for(report, "ASYNC001")
        assert "threading.Lock.acquire" in finding.message

    def test_pragma_suppression(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "suppressed.py",
            """
            import time

            async def handler():
                time.sleep(0.5)  # analyze: ignore[ASYNC001] -- test stub
            """,
        )
        report = analyze_paths([path])
        assert findings_for(report, "ASYNC001") == []
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# ASYNC002 — threading lock held across an await
# ----------------------------------------------------------------------
class TestLockAcrossAwait:
    def test_seeded_violation(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "held.py",
            """
            import asyncio
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._values = {}

                async def refresh(self, key):
                    with self._lock:
                        self._values[key] = await asyncio.sleep(0)
            """,
        )
        report = analyze_paths([path])
        (finding,) = findings_for(report, "ASYNC002")
        assert finding.line == 11
        assert "_lock" in finding.message

    def test_lock_without_await_is_quiet(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "brief.py",
            """
            import asyncio
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._hits = 0

                async def get(self, key):
                    with self._lock:
                        self._hits += 1
                    await asyncio.sleep(0)
            """,
        )
        report = analyze_paths([path])
        assert findings_for(report, "ASYNC002") == []


# ----------------------------------------------------------------------
# ASYNC003 — un-awaited coroutine calls
# ----------------------------------------------------------------------
class TestUnawaitedCoroutine:
    def test_seeded_violation(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "dropped.py",
            """
            import asyncio

            async def audit(event):
                await asyncio.sleep(0)

            async def handler(event):
                audit(event)
            """,
        )
        report = analyze_paths([path])
        (finding,) = findings_for(report, "ASYNC003")
        assert finding.line == 8
        assert "audit" in finding.message

    def test_awaited_and_wrapped_calls_are_quiet(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "fine.py",
            """
            import asyncio

            async def audit(event):
                await asyncio.sleep(0)

            async def handler(event):
                await audit(event)
                task = asyncio.ensure_future(audit(event))
                return task

            def entry(event):
                asyncio.run(handler(event))
            """,
        )
        report = analyze_paths([path])
        assert findings_for(report, "ASYNC003") == []


# ----------------------------------------------------------------------
# ASYNC004 — loop-affine APIs from thread-side code
# ----------------------------------------------------------------------
class TestThreadsideLoopTouch:
    def test_seeded_violations(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "touch.py",
            """
            import asyncio

            def finish(future: asyncio.Future, value):
                future.set_result(value)

            def feed(inbox: asyncio.Queue, item):
                inbox.put_nowait(item)
            """,
        )
        report = analyze_paths([path])
        found = findings_for(report, "ASYNC004")
        assert [f.line for f in found] == [5, 8]
        assert "call_soon_threadsafe" in found[0].message

    def test_call_soon_threadsafe_is_the_sanctioned_path(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "bridge.py",
            """
            import asyncio

            def deliver(loop: asyncio.AbstractEventLoop, payload):
                def enqueue():
                    payload.append(1)
                loop.call_soon_threadsafe(enqueue)
            """,
        )
        report = analyze_paths([path])
        assert findings_for(report, "ASYNC004") == []

    def test_scheduled_callback_may_touch_the_loop(self, tmp_path):
        # the QueryTicket bridge pattern: the nested callback runs on
        # the loop because call_soon_threadsafe scheduled it there
        path = write_fixture(
            tmp_path,
            "scheduled.py",
            """
            import asyncio

            async def aresult(ticket):
                loop = asyncio.get_running_loop()
                future = loop.create_future()

                def set_result(value):
                    future.set_result(value)

                def deliver(value):
                    loop.call_soon_threadsafe(set_result, value)

                ticket.add_done_callback(deliver)
                return await future
            """,
        )
        report = analyze_paths([path])
        assert findings_for(report, "ASYNC004") == []

    def test_loop_side_nested_helper_is_quiet(self, tmp_path):
        # a sync helper nested in an async def runs on the loop thread
        path = write_fixture(
            tmp_path,
            "nested.py",
            """
            import asyncio

            async def gather():
                results = asyncio.Queue()

                def stash(item):
                    results.put_nowait(item)

                stash(1)
                return await results.get()
            """,
        )
        report = analyze_paths([path])
        assert findings_for(report, "ASYNC004") == []


# ----------------------------------------------------------------------
# ASYNC005 — handler modules without typed-error mapping
# ----------------------------------------------------------------------
class TestHandlerErrorMapping:
    def test_seeded_violation(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "unmapped.py",
            """
            class MiniServer:
                def __init__(self):
                    self._routes = {"/v1/echo": self._handle_echo}

                async def _handle_echo(self, request):
                    return {"echo": request}
            """,
        )
        report = analyze_paths([path])
        (finding,) = findings_for(report, "ASYNC005")
        assert finding.line == 6
        assert "_handle_echo" in finding.message

    def test_error_response_mapping_satisfies(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "mapped.py",
            """
            from repro.service.api.protocol import error_response
            from repro.errors import TigrError

            class MiniServer:
                def __init__(self):
                    self._routes = {"/v1/echo": self._handle_echo}

                async def _handle_echo(self, request):
                    try:
                        return {"echo": request}
                    except TigrError as exc:
                        return error_response(exc)
            """,
        )
        report = analyze_paths([path])
        assert findings_for(report, "ASYNC005") == []

    def test_module_without_routes_is_quiet(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "noroutes.py",
            """
            async def lonely_handler(request):
                return request
            """,
        )
        report = analyze_paths([path])
        assert findings_for(report, "ASYNC005") == []


# ----------------------------------------------------------------------
# LOCK004 — guarded service state mutated from outside
# ----------------------------------------------------------------------
class TestGuardedMutation:
    BODY = """
        import threading

        class ServiceMetrics:
            def __init__(self):
                self._lock = threading.Lock()
                self.http_requests = 0
                self.samples = []

            def http_observed(self):
                with self._lock:
                    self.http_requests += 1

        def sneak(metrics: ServiceMetrics):
            metrics.http_requests += 1

        def sneak_deeper(metrics: ServiceMetrics):
            metrics.samples.append(1)

        def polite(metrics: ServiceMetrics):
            metrics.http_observed()
    """

    def test_seeded_violations(self, tmp_path):
        path = write_fixture(tmp_path, "metrics.py", self.BODY)
        report = analyze_paths([path])
        found = findings_for(report, "LOCK004")
        assert [f.line for f in found] == [15, 18]
        assert "ServiceMetrics" in found[0].message

    def test_method_calls_are_the_sanctioned_path(self, tmp_path):
        path = write_fixture(tmp_path, "metrics.py", self.BODY)
        report = analyze_paths([path])
        # `polite` (line 21) calls the guarded method; not flagged
        assert all(f.line != 21 for f in findings_for(report, "LOCK004"))

    def test_own_methods_are_exempt(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "own.py",
            """
            import threading

            class ServiceMetrics:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self._lock:
                        self.count += 1
            """,
        )
        report = analyze_paths([path])
        assert findings_for(report, "LOCK004") == []


# ----------------------------------------------------------------------
# The repo's own service tier under the pack
# ----------------------------------------------------------------------
class TestServiceTierClean:
    def test_api_and_executor_pass_the_pack(self):
        import repro.service.api as api_pkg
        import repro.service.executor as executor_module
        import os

        report = analyze_paths(
            [os.path.dirname(api_pkg.__file__), executor_module.__file__],
            rules=["ASYNC*", "LOCK004"],
        )
        assert report.findings == [], report.to_text()

    def test_executor_suppression_is_documented(self):
        # the one intentional blocking call (the sync submit path's
        # opt-in queue.put) is pragma-suppressed, not invisible:
        # --no-suppress resurfaces it with the async bridge chain
        import repro.service.api.bridge as bridge_module
        import repro.service.executor as executor_module

        report = analyze_paths(
            [bridge_module.__file__, executor_module.__file__],
            rules=["ASYNC001"],
            honor_suppressions=False,
        )
        assert [f.rule_id for f in report.findings] == ["ASYNC001"]
        assert report.findings[0].path.endswith("executor.py")
        assert "submit_batch_async" in report.findings[0].message
