"""Unit tests for thread schedulers (node / virtual / maxwarp / edge)."""

import numpy as np
import pytest

from repro.core.virtual import virtual_transform
from repro.engine.schedule import (
    EdgeParallelScheduler,
    MaxWarpScheduler,
    NodeScheduler,
    VirtualScheduler,
)
from repro.errors import EngineError
from repro.graph.builder import from_edge_list


@pytest.fixture
def small_graph():
    # node 0: 5 edges, node 1: 1 edge, node 2: none
    return from_edge_list([(0, 1), (0, 2), (0, 1), (0, 2), (0, 1), (1, 2)], num_nodes=3)


class TestNodeScheduler:
    def test_batch(self, small_graph):
        batch = NodeScheduler(small_graph).batch(np.array([0, 2]))
        assert batch.phys.tolist() == [0, 2]
        assert batch.counts.tolist() == [5, 0]
        assert batch.starts.tolist() == [0, 6]
        assert batch.edge_indices().tolist() == [0, 1, 2, 3, 4]

    def test_all_nodes(self, small_graph):
        assert NodeScheduler(small_graph).all_nodes().tolist() == [0, 1, 2]

    def test_sources_per_edge(self, small_graph):
        batch = NodeScheduler(small_graph).batch(np.array([0, 1]))
        assert batch.sources_per_edge().tolist() == [0] * 5 + [1]

    def test_trace_roundtrip(self, small_graph):
        batch = NodeScheduler(small_graph).batch(np.array([0]))
        trace = batch.trace()
        assert trace.total_edges == 5

    def test_slice(self, small_graph):
        batch = NodeScheduler(small_graph).batch(np.array([0, 1, 2]))
        sub = batch.slice(1, 3)
        assert sub.phys.tolist() == [1, 2]


class TestVirtualScheduler:
    def test_expands_to_siblings(self, small_graph):
        v = virtual_transform(small_graph, 2)
        sched = VirtualScheduler(v)
        batch = sched.batch(np.array([0]))
        # node 0 (degree 5, K=2) -> 3 virtual nodes
        assert batch.num_threads == 3
        assert batch.phys.tolist() == [0, 0, 0]
        assert batch.counts.tolist() == [2, 2, 1]

    def test_coalesced_strides(self, small_graph):
        v = virtual_transform(small_graph, 2, coalesced=True)
        batch = VirtualScheduler(v).batch(np.array([0]))
        assert batch.strides.tolist() == [3, 3, 3]
        assert np.array_equal(np.sort(batch.edge_indices()), np.arange(5))

    def test_empty_for_sink(self, small_graph):
        v = virtual_transform(small_graph, 2)
        assert VirtualScheduler(v).batch(np.array([2])).num_threads == 0


class TestMaxWarpScheduler:
    def test_lane_math(self, small_graph):
        sched = MaxWarpScheduler(small_graph, 2)
        batch = sched.batch(np.array([0]))
        # node 0, degree 5, w=2: lane 0 -> slots 0,2,4; lane 1 -> 1,3
        assert batch.num_threads == 2
        assert batch.counts.tolist() == [3, 2]
        assert batch.starts.tolist() == [0, 1]
        assert batch.strides.tolist() == [2, 2]
        assert sorted(batch.edge_indices().tolist()) == [0, 1, 2, 3, 4]

    def test_low_degree_padding(self, small_graph):
        """MW wastes lanes on low-degree nodes: degree 1, w=4."""
        batch = MaxWarpScheduler(small_graph, 4).batch(np.array([1]))
        assert batch.num_threads == 4
        assert batch.counts.tolist() == [1, 0, 0, 0]

    def test_full_coverage(self, small_graph):
        for w in (2, 4, 8):
            batch = MaxWarpScheduler(small_graph, w).batch(np.array([0, 1, 2]))
            assert sorted(batch.edge_indices().tolist()) == list(range(6))

    def test_bad_w(self, small_graph):
        with pytest.raises(EngineError):
            MaxWarpScheduler(small_graph, 0)
        with pytest.raises(EngineError):
            MaxWarpScheduler(small_graph, 64)


class TestEdgeParallelScheduler:
    def test_one_thread_per_edge(self, small_graph):
        batch = EdgeParallelScheduler(small_graph).batch(np.array([0, 1]))
        assert batch.num_threads == 6
        assert batch.counts.tolist() == [1] * 6
        assert batch.edge_indices().tolist() == list(range(6))
        assert batch.phys.tolist() == [0] * 5 + [1]

    def test_subset_of_frontier(self, small_graph):
        batch = EdgeParallelScheduler(small_graph).batch(np.array([1]))
        assert batch.edge_indices().tolist() == [5]

    def test_perfect_balance_trace(self, small_graph):
        from repro.gpu.warp import warp_statistics

        batch = EdgeParallelScheduler(small_graph).batch(np.array([0, 1]))
        stats = warp_statistics(batch.trace())
        assert stats.steps.tolist() == [1]
