"""Cache economics: GDSF policy math, trace forecasting, pre-warming.

Covers the three layers of :mod:`repro.service.economics` —

* the GDSF priority arithmetic and its interaction with the catalog
  (clock inflation, frequency persistence across eviction, and
  price agreement across a spill/hydrate round-trip, which is what
  lets process workers evict by the same rules as the parent);
* the trace-mining forecaster and the warm-plan file format;
* the pre-warmer, including the golden-trace end-to-end: replaying
  ``tests/traces/bfs-heavy.jsonl`` prewarmed under every
  (policy × backend) pair must reproduce the recorded digests.
"""

import os

import pytest

from repro.core.weights import DumbWeight
from repro.errors import ServiceError
from repro.graph.generators import rmat
from repro.service import (
    AnalyticsService,
    ArtifactKey,
    GdsfPolicy,
    GraphCatalog,
    LruPolicy,
    Prewarmer,
    WarmPlan,
    forecast_trace,
    forecast_traces,
    load_plan,
    load_trace,
    make_policy,
    replay_trace,
    resolve_policy,
    resolve_trace_graphs,
    save_plan,
)
from repro.service.economics import CATALOG_POLICY_ENV

TRACES = os.path.join(os.path.dirname(__file__), "traces")
BFS_HEAVY = os.path.join(TRACES, "bfs-heavy.jsonl")


class FakeArtifact:
    """Duck-typed artifact for pure policy math: fixed cost and size."""

    def __init__(self, build_seconds, size):
        self.build_seconds = build_seconds
        self._size = size

    def nbytes(self):
        return self._size


def fake_key(tag, kind="virtual+", k=8):
    return ArtifactKey(
        graph_fingerprint=f"{tag:0>64s}", kind=kind, degree_bound=k
    )


class TestPolicyResolution:
    def test_default_is_lru(self, monkeypatch):
        monkeypatch.delenv(CATALOG_POLICY_ENV, raising=False)
        assert resolve_policy(None) == "lru"
        assert isinstance(make_policy(None), LruPolicy)
        assert GraphCatalog().policy == "lru"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(CATALOG_POLICY_ENV, "gdsf")
        assert resolve_policy(None) == "gdsf"
        assert isinstance(make_policy(None), GdsfPolicy)
        assert GraphCatalog().policy == "gdsf"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(CATALOG_POLICY_ENV, "gdsf")
        assert resolve_policy("lru") == "lru"
        assert GraphCatalog(policy="lru").policy == "lru"

    def test_unknown_policy_rejected(self, monkeypatch):
        with pytest.raises(ServiceError):
            resolve_policy("clock-pro")
        monkeypatch.setenv(CATALOG_POLICY_ENV, "mru")
        with pytest.raises(ServiceError):
            GraphCatalog()


class TestGdsfArithmetic:
    def test_priority_formula(self):
        policy = GdsfPolicy()
        key = fake_key("a")
        policy.record_insert(key, FakeArtifact(build_seconds=2.0, size=1000))
        # clock 0, frequency 1: priority = 1 * 2.0 / 1000
        assert policy.priority_of(key) == pytest.approx(0.002)
        policy.record_access(key, FakeArtifact(build_seconds=2.0, size=1000))
        assert policy.frequency_of(key) == 2
        assert policy.priority_of(key) == pytest.approx(0.004)

    def test_clock_rises_to_victim_priority(self):
        policy = GdsfPolicy()
        cheap, dear = fake_key("cheap"), fake_key("dear")
        policy.record_insert(cheap, FakeArtifact(0.1, 1000))
        policy.record_insert(dear, FakeArtifact(10.0, 1000))
        entries = {cheap: None, dear: None}
        assert policy.select_victim(entries) is cheap
        policy.record_evict(cheap)
        assert policy.clock == pytest.approx(0.1 / 1000)
        # later inserts are priced on top of the inflated clock
        late = fake_key("late")
        policy.record_insert(late, FakeArtifact(0.1, 1000))
        assert policy.priority_of(late) == pytest.approx(2 * 0.1 / 1000)

    def test_frequency_survives_eviction(self):
        policy = GdsfPolicy()
        key = fake_key("comeback")
        artifact = FakeArtifact(1.0, 1000)
        policy.record_insert(key, artifact)
        policy.record_access(key, artifact)
        policy.record_evict(key)
        assert policy.frequency_of(key) == 2
        assert policy.priority_of(key) == 0.0  # not resident
        # a disk-tier comeback resumes the count instead of restarting
        policy.record_insert(key, artifact)
        assert policy.frequency_of(key) == 3

    def test_tie_breaks_to_lru_front(self):
        policy = GdsfPolicy()
        first, second = fake_key("first"), fake_key("second")
        same = FakeArtifact(1.0, 1000)
        policy.record_insert(first, same)
        policy.record_insert(second, same)
        assert policy.select_victim({first: None, second: None}) is first

    def test_expensive_hot_entry_survives_one_shot_scan(self):
        """The motivating workload: GDSF keeps what LRU flushes."""
        hot = fake_key("hot")
        hot_artifact = FakeArtifact(build_seconds=5.0, size=100)
        scan = [
            (fake_key(f"scan{i}"), FakeArtifact(0.001, 100))
            for i in range(6)
        ]
        survivors = {}
        for name in ("lru", "gdsf"):
            catalog = GraphCatalog(max_entries=2, policy=name)
            catalog.put(hot, hot_artifact)
            for _ in range(3):  # traffic loves this artifact
                catalog.get_for_key(hot, lambda: hot_artifact)
            for key, artifact in scan:  # one-shot cold scan
                catalog.put(key, artifact)
            survivors[name] = hot in catalog
        assert survivors["gdsf"] is True
        assert survivors["lru"] is False


class TestSpillHydrateRepricing:
    def test_worker_reprices_identically_after_hydrate(self, tmp_path):
        graph = rmat(100, 700, seed=11)
        parent = GraphCatalog(
            spill_dir=str(tmp_path), write_through=True, policy="gdsf"
        )
        built = parent.get_or_build(graph, "virtual+", 10)
        key = built.key
        parent_priority = parent.eviction_policy().priority_of(key)
        assert parent_priority > 0
        # a sibling catalog (a process worker, conceptually) hydrates
        # the artifact from the shared tier and prices it the same:
        # build_seconds rides in the .npz and nbytes() recomputes.
        worker = GraphCatalog(
            spill_dir=str(tmp_path), write_through=True, policy="gdsf"
        )
        hydrated = worker.hydrate(key)
        assert hydrated is not None
        assert hydrated.build_seconds == built.build_seconds
        assert hydrated.nbytes() == built.nbytes()
        worker_priority = worker.eviction_policy().priority_of(key)
        assert worker_priority == pytest.approx(parent_priority)


class TestForecast:
    def test_bfs_heavy_forecast_shape(self):
        trace = load_trace(BFS_HEAVY)
        plan = forecast_trace(trace, source=BFS_HEAVY)
        assert plan.requests_total == len(trace.requests)
        assert plan.entries and plan.uncacheable == 0
        assert "pokec" in plan.graphs
        scores = [entry.score for entry in plan.entries]
        assert scores == sorted(scores, reverse=True)
        for entry in plan.entries:
            assert sum(entry.histogram) == entry.requests
            assert entry.score == pytest.approx(
                entry.requests * entry.est_build_s
            )
            # auto/k=0 requests resolved to a concrete artifact identity
            assert entry.kind in ("udt", "virtual", "virtual+")
            assert entry.k > 0 and entry.fingerprint

    def test_plan_round_trips_through_json(self, tmp_path):
        plan = forecast_trace(load_trace(BFS_HEAVY), source=BFS_HEAVY)
        path = str(tmp_path / "plan.json")
        save_plan(plan, path)
        loaded = load_plan(path)
        assert loaded.as_dict() == plan.as_dict()

    def test_load_plan_rejects_garbage(self, tmp_path):
        path = tmp_path / "not-a-plan.json"
        path.write_text('{"kind": "something-else"}')
        with pytest.raises(ServiceError):
            load_plan(str(path))
        path.write_text("{nope")
        with pytest.raises(ServiceError):
            load_plan(str(path))

    def test_merging_same_trace_doubles_demand(self):
        once = forecast_traces([BFS_HEAVY])
        twice = forecast_traces([BFS_HEAVY, BFS_HEAVY])
        assert len(twice.entries) == len(once.entries)
        assert twice.requests_total == 2 * once.requests_total
        for merged, single in zip(twice.entries, once.entries):
            assert merged.requests == 2 * single.requests
            assert sum(merged.histogram) == merged.requests

    def test_top_keeps_highest_ranked(self):
        plan = forecast_trace(load_trace(BFS_HEAVY))
        top = plan.top(1)
        assert len(top.entries) == 1
        assert top.entries[0] == plan.entries[0]
        assert top.requests_total == plan.requests_total

    def test_forecast_cli_writes_plan(self, tmp_path, capsys):
        from repro.__main__ import main

        out = str(tmp_path / "plan.json")
        assert main(["forecast", BFS_HEAVY, "--out", out]) == 0
        captured = capsys.readouterr().out
        assert "warm-set forecast" in captured
        plan = load_plan(out)
        assert plan.entries
        assert plan.sources == (BFS_HEAVY,)
        # --top truncates the *saved* plan too, not just the table
        top = str(tmp_path / "top.json")
        assert main(["forecast", BFS_HEAVY, "--top", "1", "--out", top]) == 0
        assert len(load_plan(top).entries) == 1


class TestPrewarmer:
    def test_prewarm_then_replay_hits_warm_cache(self, tmp_path):
        trace = load_trace(BFS_HEAVY)
        graphs = resolve_trace_graphs(trace)
        plan = forecast_trace(trace)
        catalog = GraphCatalog(
            spill_dir=str(tmp_path), write_through=True, policy="gdsf"
        )
        with AnalyticsService(catalog, workers=2, backend="threads") as service:
            prewarmer = Prewarmer(service, plan, graphs=graphs).run_inline()
            assert prewarmer.built == len(plan.entries)
            assert prewarmer.skipped == 0 and not prewarmer.errors
            assert catalog.stats.prewarm_built == len(plan.entries)
            report = replay_trace(trace, service=service, graphs=graphs)
        assert report.ok and report.digests_checked > 0
        assert catalog.stats.prewarm_hits > 0
        # every transform lookup was warm
        assert service.metrics.summary()["cache_hit_rate"] == 1.0
        assert service.metrics.summary()["prewarm_built"] == len(plan.entries)

    def test_unresolvable_graph_is_skipped_not_fatal(self):
        from dataclasses import replace

        plan = forecast_trace(load_trace(BFS_HEAVY))
        plan.graphs = {}  # drop the recipes: nothing is resolvable
        # point every entry at a graph nobody registered
        renamed = [replace(entry, graph="ghost") for entry in plan.entries]
        plan.entries = renamed
        with AnalyticsService(GraphCatalog(), workers=1) as service:
            prewarmer = Prewarmer(service, plan).run_inline()
        assert prewarmer.built == 0
        assert prewarmer.skipped == len(renamed)
        assert prewarmer.errors

    def test_process_workers_hydrate_prewarmed_artifacts(self):
        # Workers never see the front-end memory tier: without the
        # publish-to-shared-tier step the prewarm work would be wasted
        # on the process backend. The witness is hydrate_hits — worker
        # cache fills served from disk instead of rebuilds.
        trace = load_trace(BFS_HEAVY)
        graphs = resolve_trace_graphs(trace)
        plan = forecast_trace(trace)
        with AnalyticsService(
            GraphCatalog(policy="gdsf"), workers=2, backend="processes"
        ) as service:
            assert service.shared_artifact_dir is not None
            prewarmer = Prewarmer(service, plan, graphs=graphs).run_inline()
            assert prewarmer.built == len(plan.entries)
            report = replay_trace(trace, service=service, graphs=graphs)
            summary = service.metrics.summary()
        assert report.ok
        assert summary["hydrate_hits"] > 0

    def test_background_start_is_idempotent(self):
        plan = WarmPlan()  # empty: finishes immediately
        with AnalyticsService(GraphCatalog(), workers=1) as service:
            prewarmer = Prewarmer(service, plan)
            assert prewarmer.start() is prewarmer
            assert prewarmer.start() is prewarmer
            assert prewarmer.join(timeout=10.0)
            assert prewarmer.done


class TestGoldenTraceParity:
    @pytest.mark.parametrize("backend", ("threads", "processes"))
    @pytest.mark.parametrize("policy", ("lru", "gdsf"))
    def test_prewarmed_replay_matches_recorded_digests(
        self, policy, backend, tmp_path
    ):
        trace = load_trace(BFS_HEAVY)
        graphs = resolve_trace_graphs(trace)
        catalog = GraphCatalog(
            spill_dir=str(tmp_path), write_through=True, policy=policy
        )
        with AnalyticsService(
            catalog, workers=2, backend=backend
        ) as service:
            plan = forecast_trace(trace)
            Prewarmer(service, plan, graphs=graphs).run_inline()
            report = replay_trace(trace, service=service, graphs=graphs)
        assert report.ok, report.mismatches
        assert report.digests_checked == len(trace.results)
        assert report.results_failed == 0
