"""Unit + property tests for the ragged-range indexing primitives."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexing import ranges_to_indices, segment_ids, strided_ranges_to_indices


class TestRangesToIndices:
    def test_basic(self):
        out = ranges_to_indices(np.array([3, 10]), np.array([2, 3]))
        assert out.tolist() == [3, 4, 10, 11, 12]

    def test_zero_counts_skipped(self):
        out = ranges_to_indices(np.array([3, 7, 10]), np.array([2, 0, 1]))
        assert out.tolist() == [3, 4, 10]

    def test_all_zero(self):
        out = ranges_to_indices(np.array([3, 7]), np.array([0, 0]))
        assert out.tolist() == []

    def test_empty(self):
        assert ranges_to_indices(np.array([]), np.array([])).tolist() == []

    def test_single_range(self):
        assert ranges_to_indices(np.array([5]), np.array([4])).tolist() == [5, 6, 7, 8]

    def test_overlapping_ranges_allowed(self):
        out = ranges_to_indices(np.array([0, 0]), np.array([2, 2]))
        assert out.tolist() == [0, 1, 0, 1]


class TestStrided:
    def test_stride_two(self):
        out = strided_ranges_to_indices(np.array([0]), np.array([3]), np.array([2]))
        assert out.tolist() == [0, 2, 4]

    def test_mixed_strides(self):
        out = strided_ranges_to_indices(
            np.array([0, 100]), np.array([3, 2]), np.array([2, 5])
        )
        assert out.tolist() == [0, 2, 4, 100, 105]

    def test_none_strides_unit(self):
        out = strided_ranges_to_indices(np.array([1]), np.array([3]), None)
        assert out.tolist() == [1, 2, 3]

    def test_leading_zero_count(self):
        out = strided_ranges_to_indices(
            np.array([9, 0]), np.array([0, 2]), np.array([1, 3])
        )
        assert out.tolist() == [0, 3]


class TestSegmentIds:
    def test_basic(self):
        assert segment_ids(np.array([2, 0, 3])).tolist() == [0, 0, 2, 2, 2]

    def test_empty(self):
        assert segment_ids(np.array([], dtype=np.int64)).tolist() == []


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1000),   # start
            st.integers(min_value=0, max_value=20),     # count
            st.integers(min_value=1, max_value=7),      # stride
        ),
        max_size=30,
    )
)
@settings(max_examples=200, deadline=None)
def test_strided_matches_naive(triples):
    """Property: the vectorised expansion equals the obvious loop."""
    starts = np.array([t[0] for t in triples], dtype=np.int64)
    counts = np.array([t[1] for t in triples], dtype=np.int64)
    strides = np.array([t[2] for t in triples], dtype=np.int64)
    expected = []
    for s, c, step in triples:
        expected.extend(s + step * i for i in range(c))
    got = strided_ranges_to_indices(starts, counts, strides)
    assert got.tolist() == expected


@given(
    st.lists(st.integers(min_value=0, max_value=9), max_size=25)
)
@settings(max_examples=100, deadline=None)
def test_segment_ids_parallel_to_expansion(counts):
    """Property: segment_ids marks each expanded slot's range."""
    counts_arr = np.array(counts, dtype=np.int64)
    seg = segment_ids(counts_arr)
    assert len(seg) == counts_arr.sum()
    expected = [i for i, c in enumerate(counts) for _ in range(c)]
    assert seg.tolist() == expected
