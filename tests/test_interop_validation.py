"""Interop bridges + independent third-party validation.

The strongest external check available offline: this library's
engines (including Tigr-scheduled runs) against NetworkX's and
SciPy's own implementations — oracles nobody in this repository
wrote.
"""

import networkx as nx
import numpy as np
import pytest
from scipy.sparse.csgraph import connected_components as scipy_cc
from scipy.sparse.csgraph import dijkstra as scipy_dijkstra

from repro.algorithms import bc, connected_components, pagerank, sssp
from repro.core.virtual import virtual_transform
from repro.errors import GraphError
from repro.graph.builder import from_edge_list, to_undirected
from repro.graph.generators import rmat
from repro.graph.interop import from_networkx, from_scipy, to_networkx, to_scipy_csr


@pytest.fixture(scope="module")
def graph():
    return rmat(150, 1200, seed=91, weight_range=(1, 9))


@pytest.fixture(scope="module")
def source(graph):
    return int(np.argmax(graph.out_degrees()))


class TestBridges:
    def test_networkx_roundtrip(self, graph):
        nxg = to_networkx(graph)
        back = from_networkx(nxg)
        # parallel edges collapse with min weight; sssp results survive
        assert back.num_nodes == graph.num_nodes
        assert nxg.number_of_edges() == back.num_edges

    def test_networkx_undirected_expansion(self):
        nxg = nx.Graph([(0, 1), (1, 2)])
        g = from_networkx(nxg, weight_attr=None)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.is_weighted

    def test_networkx_bad_labels(self):
        nxg = nx.DiGraph([("a", "b")])
        with pytest.raises(GraphError, match="labels"):
            from_networkx(nxg)

    def test_scipy_roundtrip(self, graph):
        matrix = to_scipy_csr(graph)
        assert matrix.shape == (graph.num_nodes, graph.num_nodes)
        back = from_scipy(matrix)
        assert back.num_nodes == graph.num_nodes
        assert back.num_edges == graph.num_edges

    def test_scipy_rejects_rectangular(self):
        from scipy.sparse import csr_matrix

        with pytest.raises(GraphError, match="square"):
            from_scipy(csr_matrix((2, 3)))

    def test_scipy_unweighted(self, graph):
        back = from_scipy(to_scipy_csr(graph), weighted=False)
        assert not back.is_weighted


class TestThirdPartyOracles:
    def test_sssp_vs_scipy_dijkstra(self, graph, source):
        ours = sssp(virtual_transform(graph, 10, coalesced=True), source).values
        theirs = scipy_dijkstra(to_scipy_csr(graph), indices=source)
        assert np.allclose(ours, theirs, equal_nan=True)

    def test_sssp_vs_networkx(self, graph, source):
        ours = sssp(graph, source).values
        lengths = nx.single_source_dijkstra_path_length(
            to_networkx(graph), source, weight="weight"
        )
        for node, dist in lengths.items():
            assert ours[node] == pytest.approx(dist)
        unreached = set(range(graph.num_nodes)) - set(lengths)
        assert all(np.isinf(ours[list(unreached)])) if unreached else True

    def test_cc_vs_scipy(self, graph):
        und = to_undirected(graph.without_weights())
        ours = connected_components(und).values.astype(np.int64)
        count, labels = scipy_cc(to_scipy_csr(und), directed=False)
        # same partition (labels differ; compare as partitions)
        assert len(set(ours.tolist())) == count
        pairs = {}
        for our_label, their_label in zip(ours, labels):
            assert pairs.setdefault(int(our_label), int(their_label)) == their_label

    def test_pagerank_vs_networkx(self, graph):
        g = graph.without_weights()
        ours = pagerank(virtual_transform(g, 10), tolerance=1e-12).values
        theirs = nx.pagerank(to_networkx(g), alpha=0.85, tol=1e-12,
                             max_iter=200, weight=None)
        for node, rank in theirs.items():
            assert ours[node] == pytest.approx(rank, abs=2e-4)

    def test_bc_vs_networkx_single_source(self):
        # small unweighted graph; networkx betweenness_centrality_subset
        # with one source, unnormalised, matches Brandes dependencies
        g = rmat(60, 400, seed=17)
        source = int(np.argmax(g.out_degrees()))
        ours = bc(g, source).centrality
        nxg = to_networkx(g)
        theirs = nx.betweenness_centrality_subset(
            nxg, sources=[source], targets=list(nxg.nodes()), normalized=False
        )
        for node, score in theirs.items():
            if node == source:
                continue
            assert ours[node] == pytest.approx(score, abs=1e-9), node

    def test_triangles_vs_networkx(self):
        from repro.algorithms.neighborhood import triangle_count

        g = to_undirected(rmat(60, 500, seed=19))
        ours = triangle_count(g)
        theirs = sum(nx.triangles(to_networkx(g).to_undirected()).values()) // 3
        assert ours == theirs
