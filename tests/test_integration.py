"""End-to-end integration: every execution path agrees on every analytic.

The strongest correctness statement the library can make: for each of
the six analytics, *all* of these produce identical answers on the
same dataset —

* the sequential reference oracle,
* the node-scheduled push engine (worklist on and off),
* the virtual engines (default and coalesced layouts),
* the physically transformed graph (where supported),
* MW sub-warp and edge-parallel scheduling,
* the G-Shards compute pass (where applicable),
* the hardwired primitive (where one exists),
* every Table 2 framework model via the Method interface.
"""

import numpy as np
import pytest

from repro.algorithms import bc, bfs, connected_components, pagerank, sssp, sswp
from repro.algorithms.hardwired import (
    delta_stepping_sssp,
    direction_optimizing_bfs,
    gas_pagerank,
    pointer_jumping_cc,
)
from repro.algorithms.programs import CCProgram, SSSPProgram
from repro.algorithms.reference import (
    reference_bc,
    reference_bfs,
    reference_connected_components,
    reference_pagerank,
    reference_sssp,
    reference_sswp,
)
from repro.baselines import standard_methods
from repro.baselines.cusha_shards import GShards
from repro.core.udt import udt_transform
from repro.core.virtual import virtual_transform
from repro.core.weights import DumbWeight
from repro.engine.push import EngineOptions
from repro.engine.schedule import EdgeParallelScheduler, MaxWarpScheduler
from repro.graph.builder import to_undirected
from repro.graph.datasets import load_dataset


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("pokec", scale=0.25)


@pytest.fixture(scope="module")
def source(dataset):
    return int(np.argmax(dataset.out_degrees()))


class TestSSSPAllPaths:
    def test_everything_agrees(self, dataset, source):
        ref = reference_sssp(dataset, source)

        assert np.allclose(sssp(dataset, source).values, ref)
        assert np.allclose(
            sssp(dataset, source, options=EngineOptions(worklist=False)).values, ref
        )
        for coalesced in (False, True):
            virtual = virtual_transform(dataset, 10, coalesced=coalesced)
            assert np.allclose(sssp(virtual, source).values, ref)
        physical = udt_transform(dataset, 8, dumb_weight=DumbWeight.ZERO)
        assert np.allclose(
            physical.read_values(sssp(physical.graph, source).values), ref
        )
        assert np.allclose(sssp(MaxWarpScheduler(dataset, 8), source).values, ref)
        assert np.allclose(sssp(EdgeParallelScheduler(dataset), source).values, ref)
        shard_values, _ = GShards.from_graph(dataset, 64).run_program(
            SSSPProgram(), source
        )
        assert np.allclose(shard_values, ref)
        assert np.allclose(delta_stepping_sssp(dataset, source).values, ref)


class TestBFSAllPaths:
    def test_everything_agrees(self, dataset, source):
        g = dataset.without_weights()
        ref = reference_bfs(g, source)
        assert np.allclose(bfs(g, source).values, ref, equal_nan=True)
        assert np.allclose(
            bfs(virtual_transform(g, 10, coalesced=True), source).values,
            ref, equal_nan=True,
        )
        assert np.allclose(
            direction_optimizing_bfs(g, source).values, ref, equal_nan=True
        )


class TestCCAllPaths:
    def test_everything_agrees(self, dataset):
        g = to_undirected(dataset.without_weights())
        ref = reference_connected_components(g)
        assert np.array_equal(
            connected_components(g).values.astype(np.int64), ref
        )
        assert np.array_equal(
            connected_components(virtual_transform(g, 10)).values.astype(np.int64),
            ref,
        )
        physical = udt_transform(g, 8, dumb_weight=DumbWeight.NONE)
        assert np.array_equal(
            physical.read_values(
                connected_components(physical.graph).values
            ).astype(np.int64),
            ref,
        )
        assert np.array_equal(
            pointer_jumping_cc(g).values.astype(np.int64), ref
        )
        shard_values, _ = GShards.from_graph(g, 64).run_program(CCProgram(), None)
        assert np.array_equal(shard_values.astype(np.int64), ref)


class TestRemainingAnalytics:
    def test_sswp(self, dataset, source):
        ref = reference_sswp(dataset, source)
        assert np.allclose(sswp(dataset, source).values, ref)
        assert np.allclose(
            sswp(virtual_transform(dataset, 10, coalesced=True), source).values, ref
        )
        physical = udt_transform(dataset, 8, dumb_weight=DumbWeight.INFINITY)
        assert np.allclose(
            physical.read_values(sswp(physical.graph, source).values), ref
        )

    def test_bc(self, dataset, source):
        g = dataset.without_weights()
        ref = reference_bc(g, source)
        assert np.allclose(bc(g, source).centrality, ref)
        assert np.allclose(
            bc(virtual_transform(g, 10, coalesced=True), source).centrality, ref
        )

    def test_pagerank(self, dataset):
        g = dataset.without_weights()
        ref = reference_pagerank(g, tolerance=1e-12)
        assert np.allclose(pagerank(g, tolerance=1e-12).values, ref, atol=1e-9)
        assert np.allclose(
            pagerank(virtual_transform(g, 10), tolerance=1e-12).values,
            ref, atol=1e-9,
        )
        assert np.allclose(
            gas_pagerank(g, tolerance=1e-12).values, ref, atol=1e-9
        )


class TestMethodMatrixOnDataset:
    """The full Table 2 line-up yields reference answers on a real
    stand-in dataset (not just the synthetic unit-test graph)."""

    @pytest.mark.parametrize("algorithm", ["bfs", "sssp", "sswp", "cc", "bc", "pr"])
    def test_all_methods(self, dataset, source, algorithm):
        refs = {
            "bfs": lambda: reference_bfs(dataset.without_weights(), source),
            "sssp": lambda: reference_sssp(dataset, source),
            "sswp": lambda: reference_sswp(dataset, source),
            "cc": lambda: reference_connected_components(
                to_undirected(dataset.without_weights())
            ),
            "bc": lambda: reference_bc(dataset.without_weights(), source),
            "pr": lambda: reference_pagerank(dataset.without_weights()),
        }
        ref = refs[algorithm]()
        for method in standard_methods(k_udt=8, k_v=10):
            if not method.supports(algorithm):
                continue
            result = method.run(dataset, algorithm, source)
            assert not result.oom, method.name
            if algorithm == "cc":
                assert np.array_equal(result.values.astype(np.int64), ref), method.name
            elif algorithm == "pr":
                assert np.allclose(result.values, ref, atol=1e-6), method.name
            else:
                assert np.allclose(result.values, ref, equal_nan=True), method.name
