"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    configuration_power_law,
    erdos_renyi,
    grid_2d,
    path_graph,
    regular_ring,
    rmat,
    star,
)
from repro.graph.stats import degree_stats


class TestRmat:
    def test_shape(self):
        g = rmat(100, 500, seed=1)
        assert g.num_nodes == 100
        assert 0 < g.num_edges <= 500

    def test_deterministic(self):
        assert rmat(100, 500, seed=1) == rmat(100, 500, seed=1)

    def test_different_seeds_differ(self):
        assert rmat(100, 500, seed=1) != rmat(100, 500, seed=2)

    def test_skewed_degrees(self):
        g = rmat(512, 8000, seed=3)
        stats = degree_stats(g)
        assert stats.coefficient_of_variation > 1.0

    def test_weights_in_range(self):
        g = rmat(100, 500, seed=1, weight_range=(2, 5))
        assert g.weights.min() >= 2 and g.weights.max() <= 5

    def test_no_dedup_keeps_multiplicity(self):
        g = rmat(16, 500, seed=1, dedup=False)
        assert g.num_edges == 500

    def test_bad_probabilities(self):
        with pytest.raises(GraphError):
            rmat(10, 10, a=0.9, b=0.2, c=0.2)

    def test_bad_num_nodes(self):
        with pytest.raises(GraphError):
            rmat(0, 10)

    def test_non_power_of_two_nodes(self):
        g = rmat(100, 300, seed=5)
        assert g.targets.max() < 100


class TestBarabasiAlbert:
    def test_symmetric(self):
        g = barabasi_albert(60, 3, seed=1)
        assert np.array_equal(g.out_degrees(), g.in_degrees())

    def test_min_degree(self):
        g = barabasi_albert(60, 3, seed=1)
        assert g.out_degrees().min() >= 3

    def test_hub_emerges(self):
        g = barabasi_albert(300, 2, seed=1)
        assert g.max_out_degree() > 10

    def test_bad_parameters(self):
        with pytest.raises(GraphError):
            barabasi_albert(5, 0)
        with pytest.raises(GraphError):
            barabasi_albert(3, 3)

    def test_deterministic(self):
        assert barabasi_albert(50, 2, seed=9) == barabasi_albert(50, 2, seed=9)


class TestConfigurationPowerLaw:
    def test_max_degree_respected_and_hit(self):
        g = configuration_power_law(500, exponent=2.0, max_degree=80, seed=1)
        # dedup/self-loop removal can shave a little off the pinned hub
        assert 0.7 * 80 <= g.max_out_degree() <= 80

    def test_target_edges_honored(self):
        g = configuration_power_law(
            1000, exponent=2.0, min_degree=2, max_degree=200,
            target_edges=10_000, seed=1,
        )
        assert abs(g.num_edges - 10_000) / 10_000 < 0.25

    def test_no_self_loops(self):
        g = configuration_power_law(100, seed=2, max_degree=20)
        src, dst, _ = g.to_coo()
        assert not np.any(src == dst)

    def test_bad_exponent(self):
        with pytest.raises(GraphError):
            configuration_power_law(10, exponent=0.5)

    def test_min_over_max(self):
        with pytest.raises(GraphError, match="exceeds"):
            configuration_power_law(100, min_degree=50, max_degree=10)

    def test_deterministic(self):
        a = configuration_power_law(100, seed=5, max_degree=30)
        b = configuration_power_law(100, seed=5, max_degree=30)
        assert a == b


class TestRegularFamily:
    def test_grid_degrees(self):
        g = grid_2d(5, 5)
        degrees = g.out_degrees()
        assert degrees.max() == 4
        assert degrees.min() == 2  # corners

    def test_grid_symmetric(self):
        g = grid_2d(4, 6)
        assert np.array_equal(g.out_degrees(), g.in_degrees())

    def test_grid_bad_dims(self):
        with pytest.raises(GraphError):
            grid_2d(0, 5)

    def test_ring_uniform_degree(self):
        g = regular_ring(20, 3)
        assert set(g.out_degrees().tolist()) == {3}

    def test_ring_wraps(self):
        g = regular_ring(5, 2)
        assert g.has_edge(4, 0) and g.has_edge(4, 1)

    def test_ring_bad_degree(self):
        with pytest.raises(GraphError):
            regular_ring(5, 5)

    def test_erdos_renyi_roughly_uniform(self):
        g = erdos_renyi(200, 3000, seed=1)
        stats = degree_stats(g)
        assert stats.coefficient_of_variation < 0.6

    def test_erdos_renyi_bad_nodes(self):
        with pytest.raises(GraphError):
            erdos_renyi(0, 5)


class TestSimpleShapes:
    def test_star_out_edges(self):
        g = star(5)
        assert g.out_degree(0) == 5
        assert g.num_nodes == 6
        assert g.out_degrees()[1:].sum() == 0

    def test_star_bidirectional(self):
        g = star(4, bidirectional=True)
        assert g.out_degree(0) == 4
        assert all(g.has_edge(i, 0) for i in range(1, 5))

    def test_star_zero_leaves(self):
        g = star(0)
        assert g.num_nodes == 1 and g.num_edges == 0

    def test_path(self):
        g = path_graph(4)
        assert list(g.iter_edges()) == [(0, 1), (1, 2), (2, 3)]

    def test_path_single_node(self):
        assert path_graph(1).num_edges == 0

    def test_complete(self):
        g = complete_graph(4)
        assert g.num_edges == 12
        assert set(g.out_degrees().tolist()) == {3}

    def test_complete_weighted(self):
        g = complete_graph(3, weight_range=(1, 2), seed=0)
        assert g.is_weighted


class TestWattsStrogatz:
    def test_symmetric(self):
        from repro.graph.generators import watts_strogatz

        g = watts_strogatz(100, 4, 0.1, seed=1)
        assert np.array_equal(g.out_degrees(), g.in_degrees())

    def test_no_rewiring_is_ring_like(self):
        from repro.graph.generators import watts_strogatz

        g = watts_strogatz(30, 2, 0.0, seed=1)
        # symmetrised ring: every node has degree 4
        assert set(g.out_degrees().tolist()) == {4}

    def test_small_world_diameter(self):
        from repro.graph.generators import watts_strogatz
        from repro.graph.stats import estimate_diameter

        lattice = watts_strogatz(400, 3, 0.0, seed=2)
        rewired = watts_strogatz(400, 3, 0.3, seed=2)
        assert estimate_diameter(rewired, num_sources=6, seed=0) < \
            estimate_diameter(lattice, num_sources=6, seed=0)

    def test_near_uniform_degrees(self):
        from repro.graph.generators import watts_strogatz
        from repro.graph.stats import degree_stats

        g = watts_strogatz(300, 4, 0.2, seed=3)
        assert degree_stats(g).coefficient_of_variation < 0.5

    def test_bad_parameters(self):
        from repro.graph.generators import watts_strogatz

        with pytest.raises(GraphError):
            watts_strogatz(10, 10, 0.1)
        with pytest.raises(GraphError):
            watts_strogatz(10, 2, 1.5)
