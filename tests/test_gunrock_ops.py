"""Tests for the Gunrock frontier-operator abstraction."""

import numpy as np
import pytest

from repro.algorithms.reference import (
    reference_bfs,
    reference_connected_components,
    reference_sssp,
)
from repro.baselines.gunrock_ops import (
    Operators,
    gunrock_bfs,
    gunrock_cc,
    gunrock_sssp,
)
from repro.errors import EngineError
from repro.gpu.simulator import GPUSimulator
from repro.graph.builder import from_edge_list, to_undirected


class TestOperators:
    def test_advance_visits_frontier_edges(self, diamond_graph):
        ops = Operators(diamond_graph)
        out, visited = ops.advance(
            np.array([0]), lambda src, dst, slots: np.ones(len(dst), dtype=bool)
        )
        assert out.tolist() == [1, 2]
        assert visited == 2

    def test_advance_deduplicates_output(self):
        g = from_edge_list([(0, 2), (1, 2)])
        ops = Operators(g)
        out, _ = ops.advance(
            np.array([0, 1]), lambda src, dst, slots: np.ones(len(dst), dtype=bool)
        )
        assert out.tolist() == [2]

    def test_advance_empty_frontier(self, diamond_graph):
        ops = Operators(diamond_graph)
        out, visited = ops.advance(
            np.zeros(0, dtype=np.int64),
            lambda src, dst, slots: np.ones(len(dst), dtype=bool),
        )
        assert len(out) == 0 and visited == 0

    def test_advance_bad_functor(self, diamond_graph):
        ops = Operators(diamond_graph)
        with pytest.raises(EngineError, match="boolean"):
            ops.advance(np.array([0]), lambda src, dst, slots: dst)

    def test_filter(self, diamond_graph):
        ops = Operators(diamond_graph)
        kept = ops.filter(np.array([0, 1, 2, 3]), lambda f: f % 2 == 0)
        assert kept.tolist() == [0, 2]

    def test_compute(self, diamond_graph):
        ops = Operators(diamond_graph)
        values = np.zeros(4)

        def bump(frontier):
            values[frontier] += 1

        ops.compute(np.array([1, 3]), bump)
        assert values.tolist() == [0, 1, 0, 1]

    def test_launch_counting(self, diamond_graph):
        sim = GPUSimulator()
        ops = Operators(diamond_graph, sim)
        ops.filter(np.array([0]), lambda f: f >= 0)
        ops.compute(np.array([0]), lambda f: None)
        assert ops.launches == 2
        assert sim.finish().num_iterations == 2


class TestApplications:
    def test_bfs_matches_reference(self, powerlaw_unweighted, hub_source):
        levels, launches = gunrock_bfs(powerlaw_unweighted, hub_source)
        assert np.allclose(
            levels, reference_bfs(powerlaw_unweighted, hub_source), equal_nan=True
        )
        assert launches >= 2  # advance + filter per level

    def test_sssp_matches_reference(self, powerlaw_graph, hub_source):
        dist, _ = gunrock_sssp(powerlaw_graph, hub_source)
        assert np.allclose(dist, reference_sssp(powerlaw_graph, hub_source))

    def test_sssp_requires_weights(self, powerlaw_unweighted, hub_source):
        with pytest.raises(EngineError, match="weights"):
            gunrock_sssp(powerlaw_unweighted, hub_source)

    def test_cc_matches_reference(self, powerlaw_symmetric):
        labels, _ = gunrock_cc(powerlaw_symmetric)
        assert np.array_equal(
            labels.astype(np.int64),
            reference_connected_components(powerlaw_symmetric),
        )

    def test_pipeline_cost_recorded(self, powerlaw_graph, hub_source):
        """The abstraction's price: several kernel launches per
        iteration, visible in the simulator."""
        sim = GPUSimulator()
        _, launches = gunrock_sssp(powerlaw_graph, hub_source, simulator=sim)
        metrics = sim.finish()
        assert metrics.num_iterations == launches
        # strictly more launches than the vertex-centric engine uses
        from repro.algorithms import sssp

        vertex_centric = sssp(powerlaw_graph, hub_source, simulator=GPUSimulator())
        assert launches > vertex_centric.metrics.num_iterations

    def test_small_worked_example(self):
        g = to_undirected(from_edge_list([(0, 1), (1, 2), (3, 4)]))
        labels, _ = gunrock_cc(g)
        assert labels.astype(np.int64).tolist() == [0, 0, 0, 3, 3]
