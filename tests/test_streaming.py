"""Tests for the streaming (memory-oversubscribed) execution model."""

import numpy as np
import pytest

from repro.algorithms.reference import reference_sssp
from repro.baselines.streaming import StreamingTigrMethod
from repro.baselines.tigr import TigrVirtualMethod
from repro.gpu.config import GPUConfig
from repro.graph.datasets import load_dataset
from repro.graph.generators import rmat


@pytest.fixture(scope="module")
def graph():
    return rmat(300, 3000, seed=51, weight_range=(1, 9))


@pytest.fixture(scope="module")
def source(graph):
    return int(np.argmax(graph.out_degrees()))


class TestFitsInMemory:
    def test_behaves_like_tigr(self, graph, source):
        config = GPUConfig()  # plenty of memory for this graph
        stream = StreamingTigrMethod().run(graph, "sssp", source, config=config)
        tigr = TigrVirtualMethod(coalesced=True).run(graph, "sssp", source, config=config)
        assert stream.notes["partitions"] == 1
        assert stream.notes["stream_ms"] == 0.0
        assert stream.time_ms == pytest.approx(tigr.time_ms, rel=1e-9)
        assert np.allclose(stream.values, tigr.values)


class TestOversubscribed:
    def tiny_config(self, graph):
        # budget smaller than the edge array: forces streaming but
        # leaves room for the resident value arrays.
        resident = StreamingTigrMethod().footprint(graph, "sssp")
        return GPUConfig(device_memory_bytes=resident + 20_000)

    def test_never_ooms(self, graph, source):
        config = self.tiny_config(graph)
        # the plain method would OOM at this budget...
        tigr = TigrVirtualMethod(coalesced=True).run(graph, "sssp", source, config=config)
        assert tigr.oom
        # ...streaming completes with correct results.
        stream = StreamingTigrMethod().run(graph, "sssp", source, config=config)
        assert not stream.oom
        assert np.allclose(stream.values, reference_sssp(graph, source))

    def test_streaming_costs_time(self, graph, source):
        roomy = StreamingTigrMethod().run(graph, "sssp", source, config=GPUConfig())
        tight = StreamingTigrMethod().run(
            graph, "sssp", source, config=self.tiny_config(graph)
        )
        assert tight.notes["partitions"] > 1
        assert tight.notes["stream_ms"] > 0
        assert tight.time_ms > roomy.time_ms

    def test_fitting_is_always_cheapest(self, graph, source):
        """Any oversubscription costs more than fitting; finer
        partitioning trades over-fetch bytes for copy-launch latency,
        so between oversubscribed settings the curve may dip — but
        never below the in-memory run."""
        resident = StreamingTigrMethod().footprint(graph, "sssp")
        results = []
        for slack in (120_000, 40_000, 15_000):
            config = GPUConfig(device_memory_bytes=resident + slack)
            results.append(
                StreamingTigrMethod().run(graph, "sssp", source, config=config)
            )
        fits, two, three = results
        assert fits.notes["partitions"] == 1
        assert fits.time_ms < two.time_ms
        assert fits.time_ms < three.time_ms
        # finer partitions stream fewer over-fetched bytes
        assert three.notes["streamed_bytes"] <= two.notes["streamed_bytes"]

    def test_sinaweibo_never_ooms_at_paper_budget(self):
        """Where CuSha OOMs in Table 4, streaming would complete."""
        graph = load_dataset("sinaweibo", scale=0.25)
        source = int(np.argmax(graph.out_degrees()))
        config = GPUConfig(device_memory_bytes=2 * 1024 * 1024)
        result = StreamingTigrMethod().run(graph, "sssp", source, config=config)
        assert not result.oom
        assert result.notes["partitions"] >= 2
