"""CC / BC / PageRank vs oracles, across execution targets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import bc, connected_components, pagerank
from repro.algorithms.reference import (
    reference_bc,
    reference_connected_components,
    reference_pagerank,
)
from repro.core.udt import udt_transform
from repro.core.virtual import virtual_transform
from repro.core.weights import DumbWeight
from repro.engine.schedule import EdgeParallelScheduler, MaxWarpScheduler
from repro.graph.builder import from_edge_list, to_undirected
from repro.graph.generators import erdos_renyi, rmat


class TestCC:
    def test_matches_reference(self, powerlaw_symmetric):
        ref = reference_connected_components(powerlaw_symmetric)
        result = connected_components(powerlaw_symmetric)
        assert np.array_equal(result.values.astype(np.int64), ref)

    def test_virtual_and_edge_targets(self, powerlaw_symmetric):
        ref = reference_connected_components(powerlaw_symmetric)
        for target in (
            virtual_transform(powerlaw_symmetric, 5),
            EdgeParallelScheduler(powerlaw_symmetric),
            MaxWarpScheduler(powerlaw_symmetric, 8),
        ):
            result = connected_components(target)
            assert np.array_equal(result.values.astype(np.int64), ref)

    def test_on_udt_transformed(self, powerlaw_symmetric):
        """Corollary 1: UDT preserves connectivity, hence CC labels."""
        ref = reference_connected_components(powerlaw_symmetric)
        t = udt_transform(powerlaw_symmetric, 4, dumb_weight=DumbWeight.NONE)
        result = connected_components(t.graph)
        assert np.array_equal(
            t.read_values(result.values).astype(np.int64), ref
        )

    def test_disconnected_components(self):
        g = to_undirected(from_edge_list([(0, 1), (2, 3)], num_nodes=5))
        labels = connected_components(g).values.astype(np.int64)
        assert labels.tolist() == [0, 0, 2, 2, 4]

    def test_fully_connected(self):
        g = to_undirected(from_edge_list([(i, i + 1) for i in range(9)]))
        labels = connected_components(g).values.astype(np.int64)
        assert set(labels.tolist()) == {0}


class TestBC:
    def test_single_source_matches_brandes(self, powerlaw_unweighted, hub_source):
        ref = reference_bc(powerlaw_unweighted, hub_source)
        result = bc(powerlaw_unweighted, hub_source)
        assert np.allclose(result.centrality, ref)

    def test_virtual_target(self, powerlaw_unweighted, hub_source):
        ref = reference_bc(powerlaw_unweighted, hub_source)
        for coalesced in (False, True):
            v = virtual_transform(powerlaw_unweighted, 5, coalesced=coalesced)
            assert np.allclose(bc(v, hub_source).centrality, ref)

    def test_edge_parallel_target(self, powerlaw_unweighted, hub_source):
        ref = reference_bc(powerlaw_unweighted, hub_source)
        result = bc(EdgeParallelScheduler(powerlaw_unweighted), hub_source)
        assert np.allclose(result.centrality, ref)

    def test_sigma_counts(self):
        # diamond: two shortest paths 0->3
        g = from_edge_list([(0, 1), (0, 2), (1, 3), (2, 3)])
        result = bc(g, 0)
        assert result.sigma.tolist() == [1, 1, 1, 2]
        assert result.levels.tolist() == [0, 1, 1, 2]
        # both 1 and 2 lie on half the 0->3 paths: delta = 0.5 each
        assert result.centrality[1] == pytest.approx(0.5)
        assert result.centrality[2] == pytest.approx(0.5)

    def test_source_centrality_zero(self, powerlaw_unweighted, hub_source):
        assert bc(powerlaw_unweighted, hub_source).centrality[hub_source] == 0.0

    def test_isolated_source(self):
        g = from_edge_list([(0, 1)], num_nodes=3)
        result = bc(g, 2)
        assert np.all(result.centrality == 0.0)
        assert result.levels[2] == 0

    def test_line_graph_dependencies(self):
        # 0->1->2->3: node 1 covers paths to 2,3; node 2 covers path to 3
        g = from_edge_list([(0, 1), (1, 2), (2, 3)])
        result = bc(g, 0)
        assert result.centrality[1] == pytest.approx(2.0)
        assert result.centrality[2] == pytest.approx(1.0)


class TestPageRank:
    def test_matches_reference(self, powerlaw_unweighted):
        ref = reference_pagerank(powerlaw_unweighted, tolerance=1e-12)
        result = pagerank(powerlaw_unweighted, tolerance=1e-12)
        assert np.allclose(result.values, ref, atol=1e-9)

    def test_virtual_target_identical(self, powerlaw_unweighted):
        """Theorem 3 + Corollary 4: virtual PR is exact, not approximate."""
        node = pagerank(powerlaw_unweighted, tolerance=1e-12)
        virt = pagerank(virtual_transform(powerlaw_unweighted, 5), tolerance=1e-12)
        assert np.allclose(node.values, virt.values, atol=1e-12)
        assert node.num_iterations == virt.num_iterations

    def test_ranks_sum_to_one(self, powerlaw_unweighted):
        assert pagerank(powerlaw_unweighted).values.sum() == pytest.approx(1.0)

    def test_dangling_mass_redistributed(self):
        g = from_edge_list([(0, 1)], num_nodes=2)  # node 1 dangles
        ranks = pagerank(g, tolerance=1e-14).values
        assert ranks.sum() == pytest.approx(1.0)
        assert ranks[1] > ranks[0]

    def test_uniform_on_regular_graph(self):
        g = erdos_renyi(1, 0)
        from repro.graph.generators import regular_ring

        ring = regular_ring(10, 2)
        ranks = pagerank(ring, tolerance=1e-14).values
        assert np.allclose(ranks, 0.1, atol=1e-8)

    def test_max_iterations_cap(self, powerlaw_unweighted):
        result = pagerank(powerlaw_unweighted, tolerance=0.0, max_iterations=5)
        assert result.num_iterations == 5
        assert not result.converged

    def test_empty_graph(self):
        g = from_edge_list([], num_nodes=0)
        assert pagerank(g).values.shape == (0,)


@given(seed=st.integers(min_value=0, max_value=40))
@settings(max_examples=20, deadline=None)
def test_cc_udt_preserves_components(seed):
    """Property (Corollary 1): UDT never merges or splits components."""
    graph = to_undirected(rmat(40, 120, seed=seed))
    t = udt_transform(graph, 3, dumb_weight=DumbWeight.NONE)
    got = t.read_values(connected_components(t.graph).values).astype(np.int64)
    assert np.array_equal(got, reference_connected_components(graph))


@given(seed=st.integers(min_value=0, max_value=40), k=st.integers(min_value=1, max_value=9))
@settings(max_examples=20, deadline=None)
def test_bc_virtual_equals_reference(seed, k):
    """Property: BC under virtual scheduling equals Brandes."""
    graph = rmat(40, 250, seed=seed)
    source = int(np.argmax(graph.out_degrees()))
    result = bc(virtual_transform(graph, k), source)
    assert np.allclose(result.centrality, reference_bc(graph, source))
