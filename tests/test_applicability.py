"""§3.3 applicability: positive proofs and negative demonstrations.

The paper's applicability table is not just asserted here — the
negative half is *demonstrated*: triangle counts and colorings really
do change under UDT, while the six supported analytics do not.
"""

import numpy as np
import pytest

from repro.algorithms.neighborhood import (
    chromatic_upper_bound,
    greedy_coloring,
    local_triangle_counts,
    triangle_count,
)
from repro.core.applicability import (
    REQUIREMENTS,
    explain,
    is_split_safe,
    split_safe_analyses,
    split_unsafe_analyses,
)
from repro.core.udt import udt_transform
from repro.core.weights import DumbWeight
from repro.graph.builder import from_edge_list, to_undirected
from repro.graph.generators import complete_graph, rmat


class TestClassification:
    def test_positive_list_matches_section33(self):
        """'including the widely used CC, SSSP, SSWP, BC, BFS, and PR'"""
        assert set(split_safe_analyses()) == {"bc", "bfs", "cc", "pr", "sssp", "sswp"}

    def test_negative_list_matches_section33(self):
        """'such as graph coloring (GC), triangle counting (TC),
        clique detection (CD)'"""
        assert set(split_unsafe_analyses()) == {
            "clique_detection", "graph_coloring", "triangle_counting"
        }

    def test_unknown_analysis(self):
        with pytest.raises(KeyError):
            is_split_safe("community_detection")

    def test_explanations_cite_corollaries(self):
        assert "Corollary 2" in explain("sssp")
        assert "Corollary 1" in explain("cc")
        assert "Corollary 3" in explain("sswp")
        assert "Corollary 4" in explain("pr")
        assert "UNSAFE" in explain("triangle_counting")
        assert "neighborhoods" in explain("graph_coloring")

    def test_dumb_weight_policy_consistent(self):
        from repro.core.weights import DumbWeight as DW

        assert REQUIREMENTS["sssp"].dumb_weight is DW.ZERO
        assert REQUIREMENTS["sswp"].dumb_weight is DW.INFINITY
        assert REQUIREMENTS["cc"].dumb_weight is DW.NONE


class TestTriangleCounting:
    def test_triangle_graph(self):
        g = to_undirected(from_edge_list([(0, 1), (1, 2), (2, 0)]))
        assert triangle_count(g) == 1

    def test_complete_graph(self):
        # K5 has C(5,3) = 10 triangles
        assert triangle_count(complete_graph(5)) == 10

    def test_triangle_free(self):
        g = to_undirected(from_edge_list([(0, 1), (1, 2), (2, 3)]))
        assert triangle_count(g) == 0

    def test_empty(self):
        assert triangle_count(from_edge_list([], num_nodes=4)) == 0

    def test_local_counts_sum(self):
        g = to_undirected(rmat(40, 300, seed=6))
        locals_ = local_triangle_counts(g)
        assert locals_.sum() == 3 * triangle_count(g)

    def test_local_counts_triangle(self):
        g = to_undirected(from_edge_list([(0, 1), (1, 2), (2, 0), (2, 3)]))
        assert local_triangle_counts(g).tolist() == [1, 1, 1, 0]


class TestColoring:
    def test_proper_coloring(self, powerlaw_symmetric):
        colors = greedy_coloring(powerlaw_symmetric)
        for u, v in powerlaw_symmetric.iter_edges():
            if u != v:
                assert colors[u] != colors[v]

    def test_bipartite_uses_two_colors(self):
        g = to_undirected(from_edge_list([(0, 2), (0, 3), (1, 2), (1, 3)]))
        assert chromatic_upper_bound(g) == 2

    def test_complete_graph_needs_n(self):
        assert chromatic_upper_bound(complete_graph(6)) == 6

    def test_empty(self):
        assert chromatic_upper_bound(from_edge_list([], num_nodes=3)) == 1


class TestNegativeDemonstrations:
    """UDT really breaks the neighborhood analytics — the point of the
    §3.3 applicability boundary."""

    def _split_triangle(self):
        # a triangle through a node that will be split (hub degree 5)
        edges = [(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2)]
        edges += [(0, t) for t in (3, 4, 5)] + [(t, 0) for t in (3, 4, 5)]
        return from_edge_list(edges)

    def test_udt_changes_triangle_count(self):
        graph = self._split_triangle()
        before = triangle_count(graph)
        assert before >= 1
        result = udt_transform(graph, 2, dumb_weight=DumbWeight.NONE)
        after = triangle_count(result.graph)
        assert after != before, "splitting should break triangles"

    def test_udt_changes_coloring(self):
        graph = complete_graph(6)
        before = chromatic_upper_bound(graph)  # 6
        result = udt_transform(graph, 2, dumb_weight=DumbWeight.NONE)
        after = chromatic_upper_bound(result.graph)
        assert after != before

    def test_safe_analytics_survive_same_transform(self):
        """Contrast: the same transform leaves the safe analytics
        intact (distances on original node ids)."""
        from repro.algorithms.reference import reference_sssp

        graph = self._split_triangle().with_weights(
            np.ones(self._split_triangle().num_edges)
        )
        result = udt_transform(graph, 2, dumb_weight=DumbWeight.ZERO)
        before = reference_sssp(graph, 1)
        after = result.read_values(reference_sssp(result.graph, 1))
        assert np.allclose(before, after)
