"""GraphCatalog: LRU semantics, byte budgets, and disk spill."""

import threading

import numpy as np
import pytest

from repro.algorithms import sssp
from repro.core.udt import udt_transform
from repro.core.virtual import virtual_transform
from repro.core.weights import DumbWeight
from repro.errors import ServiceError
from repro.graph.generators import rmat
from repro.service import (
    ArtifactKey,
    GraphCatalog,
    TransformArtifact,
    load_artifact,
)


@pytest.fixture
def graph():
    return rmat(120, 900, seed=5, weight_range=(1, 6))


def make_graphs(count, nodes=60, edges=300):
    return [rmat(nodes, edges, seed=100 + i) for i in range(count)]


class TestArtifactKey:
    def test_content_addressed(self, graph):
        twin = rmat(120, 900, seed=5, weight_range=(1, 6))
        a = ArtifactKey.for_transform(graph, "virtual+", 10)
        b = ArtifactKey.for_transform(twin, "virtual+", 10)
        assert a == b

    def test_dumb_weight_only_matters_for_udt(self, graph):
        v1 = ArtifactKey.for_transform(graph, "virtual", 10, DumbWeight.ZERO)
        v2 = ArtifactKey.for_transform(graph, "virtual", 10, DumbWeight.INFINITY)
        assert v1 == v2
        u1 = ArtifactKey.for_transform(graph, "udt", 8, DumbWeight.ZERO)
        u2 = ArtifactKey.for_transform(graph, "udt", 8, DumbWeight.INFINITY)
        assert u1 != u2

    def test_unknown_kind_rejected(self, graph):
        with pytest.raises(ServiceError):
            ArtifactKey.for_transform(graph, "cliq", 10)

    def test_filename_is_filesystem_safe(self, graph):
        name = ArtifactKey.for_transform(graph, "virtual+", 10).filename()
        assert "+" not in name and "/" not in name
        assert name.endswith(".npz")


class TestHitMissAccounting:
    def test_build_once_then_hit(self, graph):
        catalog = GraphCatalog()
        first = catalog.get_or_build(graph, "virtual+", 10)
        second = catalog.get_or_build(graph, "virtual+", 10)
        assert first is second
        assert catalog.stats.builds == 1
        assert catalog.stats.hits == 1
        assert catalog.stats.misses == 1
        assert catalog.stats.hit_rate == 0.5

    def test_different_k_different_artifact(self, graph):
        catalog = GraphCatalog()
        catalog.get_or_build(graph, "virtual+", 10)
        catalog.get_or_build(graph, "virtual+", 4)
        assert catalog.stats.builds == 2
        assert len(catalog) == 2

    def test_content_twin_hits(self, graph):
        catalog = GraphCatalog()
        catalog.get_or_build(graph, "virtual+", 10)
        twin = rmat(120, 900, seed=5, weight_range=(1, 6))
        catalog.get_or_build(twin, "virtual+", 10)
        assert catalog.stats.builds == 1

    def test_origin_reporting(self, graph):
        catalog = GraphCatalog()
        _, origin = catalog.get_or_build_with_origin(graph, "virtual+", 10)
        assert origin == "built"
        _, origin = catalog.get_or_build_with_origin(graph, "virtual+", 10)
        assert origin == "memory"

    def test_seconds_saved_accumulates(self, graph):
        catalog = GraphCatalog()
        catalog.get_or_build(graph, "udt", 8, dumb_weight=DumbWeight.ZERO)
        assert catalog.stats.seconds_building > 0
        before = catalog.stats.seconds_saved
        catalog.get_or_build(graph, "udt", 8, dumb_weight=DumbWeight.ZERO)
        assert catalog.stats.seconds_saved > before


class TestLRUAndBudget:
    def test_eviction_order_is_lru(self):
        graphs = make_graphs(3)
        catalog = GraphCatalog(max_entries=2)
        k0 = ArtifactKey.for_transform(graphs[0], "virtual+", 10)
        k1 = ArtifactKey.for_transform(graphs[1], "virtual+", 10)
        k2 = ArtifactKey.for_transform(graphs[2], "virtual+", 10)
        catalog.get_or_build(graphs[0], "virtual+", 10)
        catalog.get_or_build(graphs[1], "virtual+", 10)
        # touch graph 0 so graph 1 becomes least recently used
        catalog.get_or_build(graphs[0], "virtual+", 10)
        catalog.get_or_build(graphs[2], "virtual+", 10)
        assert k1 not in catalog
        assert k0 in catalog and k2 in catalog
        assert catalog.stats.evictions == 1

    def test_byte_budget_enforced(self):
        graphs = make_graphs(4)
        probe = GraphCatalog()
        artifact = probe.get_or_build(graphs[0], "virtual+", 10)
        budget = int(artifact.nbytes() * 2.5)  # fits two, not three
        catalog = GraphCatalog(memory_budget_bytes=budget)
        for g in graphs:
            catalog.get_or_build(g, "virtual+", 10)
        assert catalog.stats.bytes_in_memory <= budget
        assert catalog.stats.evictions >= 1
        assert len(catalog) >= 1

    def test_bytes_accounting_matches_entries(self):
        graphs = make_graphs(3)
        catalog = GraphCatalog()
        total = 0
        for g in graphs:
            total += catalog.get_or_build(g, "virtual+", 10).nbytes()
        assert catalog.stats.bytes_in_memory == total
        catalog.clear()
        assert catalog.stats.bytes_in_memory == 0
        assert len(catalog) == 0

    def test_oversized_artifact_served_not_retained(self, graph):
        catalog = GraphCatalog(memory_budget_bytes=1)
        artifact = catalog.get_or_build(graph, "virtual+", 10)
        assert artifact is not None
        assert len(catalog) == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ServiceError):
            GraphCatalog(memory_budget_bytes=-1)

    def test_oversized_same_key_replacement_clears_stale_entry(self):
        # Regression: replacing a resident entry with a build that is
        # larger than the whole budget used to return early *before*
        # popping the old entry — the stale artifact stayed resident
        # (and its bytes stayed accounted) while callers held the new
        # payload.  Reachable through hydrate-after-rebuild and the
        # prewarmer's put path; the guard must drop the stale entry.
        graphs = make_graphs(2, nodes=40, edges=150)
        small = GraphCatalog().get_or_build(graphs[0], "virtual+", 10)
        key = small.key
        budget = small.nbytes() * 2
        catalog = GraphCatalog(memory_budget_bytes=budget)
        catalog._insert(key, small)
        assert catalog.stats.bytes_in_memory == small.nbytes()
        big = TransformArtifact(
            key=key, payload=rmat(4000, 30000, seed=9), build_seconds=0.5
        )
        assert big.nbytes() > budget
        catalog._insert(key, big)
        assert key not in catalog
        assert catalog.peek(key) is None
        assert catalog.stats.bytes_in_memory == 0


class TestDiskSpill:
    def test_spill_round_trip_virtual(self, graph, tmp_path):
        artifact = GraphCatalog().get_or_build(graph, "virtual+", 10)
        path = str(tmp_path / "a.npz")
        artifact.save_npz(path)
        loaded = load_artifact(path)
        assert loaded.key == artifact.key
        reference = virtual_transform(graph, 10, coalesced=True)
        assert loaded.payload.coalesced is True
        assert loaded.payload.degree_bound == 10
        np.testing.assert_array_equal(
            loaded.payload.physical_ids, reference.physical_ids
        )
        np.testing.assert_array_equal(
            loaded.payload.virtual_degrees, reference.virtual_degrees
        )
        # the reloaded overlay is actually runnable
        assert np.array_equal(
            sssp(loaded.payload, 0).values, sssp(reference, 0).values
        )

    def test_spill_round_trip_udt(self, graph, tmp_path):
        artifact = GraphCatalog().get_or_build(
            graph, "udt", 6, dumb_weight=DumbWeight.ZERO
        )
        path = str(tmp_path / "u.npz")
        artifact.save_npz(path)
        loaded = load_artifact(path)
        reference = udt_transform(graph, 6, dumb_weight=DumbWeight.ZERO)
        assert loaded.payload.graph == reference.graph
        assert loaded.payload.num_original_nodes == reference.num_original_nodes
        assert loaded.payload.stats == reference.stats
        np.testing.assert_array_equal(
            loaded.payload.node_origin, reference.node_origin
        )
        np.testing.assert_array_equal(
            loaded.payload.new_edge_mask, reference.new_edge_mask
        )

    def test_evicted_artifact_reloaded_from_disk(self, tmp_path):
        graphs = make_graphs(2)
        catalog = GraphCatalog(max_entries=1, spill_dir=str(tmp_path))
        catalog.get_or_build(graphs[0], "virtual+", 10)
        catalog.get_or_build(graphs[1], "virtual+", 10)  # evicts + spills g0
        assert catalog.stats.spills == 1
        _, origin = catalog.get_or_build_with_origin(graphs[0], "virtual+", 10)
        assert origin == "disk"
        assert catalog.stats.disk_hits == 1
        assert catalog.stats.builds == 2  # never rebuilt

    def test_disk_tier_survives_new_catalog(self, graph, tmp_path):
        first = GraphCatalog(max_entries=4, spill_dir=str(tmp_path))
        artifact = first.get_or_build(graph, "udt", 6, dumb_weight=DumbWeight.ZERO)
        key = artifact.key
        first._spill(key, artifact)  # simulate an eviction spill
        # a fresh catalog (fresh process, conceptually) finds it on disk
        second = GraphCatalog(spill_dir=str(tmp_path))
        _, origin = second.get_or_build_with_origin(
            graph, "udt", 6, dumb_weight=DumbWeight.ZERO
        )
        assert origin == "disk"
        assert second.stats.builds == 0

    def test_corrupt_spill_is_a_miss(self, graph, tmp_path):
        catalog = GraphCatalog(spill_dir=str(tmp_path))
        key = ArtifactKey.for_transform(graph, "virtual+", 10)
        (tmp_path / key.filename()).write_bytes(b"not an npz")
        catalog.get_or_build(graph, "virtual+", 10)
        assert catalog.stats.builds == 1
        assert catalog.stats.disk_hits == 0

    def test_clear_drop_spilled(self, graph, tmp_path):
        catalog = GraphCatalog(max_entries=1, spill_dir=str(tmp_path))
        artifact = catalog.get_or_build(graph, "virtual+", 10)
        catalog._spill(artifact.key, artifact)
        assert list(tmp_path.glob("*.npz"))
        catalog.clear(drop_spilled=True)
        assert not list(tmp_path.glob("*.npz"))


class TestSingleFlight:
    def test_concurrent_same_key_builds_once(self, graph):
        catalog = GraphCatalog()
        build_count = []
        gate = threading.Barrier(8)

        def builder():
            build_count.append(1)
            payload = virtual_transform(graph, 10, coalesced=True)
            return TransformArtifact(
                key=ArtifactKey.for_transform(graph, "virtual+", 10),
                payload=payload,
                build_seconds=0.01,
            )

        results = []

        def worker():
            gate.wait()
            results.append(
                catalog.get_or_build(graph, "virtual+", 10, builder=builder)
            )

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(build_count) == 1
        assert all(r is results[0] for r in results)

    def test_concurrent_distinct_keys_all_build(self):
        graphs = make_graphs(4)
        catalog = GraphCatalog()
        gate = threading.Barrier(4)

        def worker(g):
            gate.wait()
            catalog.get_or_build(g, "virtual+", 10)

        threads = [threading.Thread(target=worker, args=(g,)) for g in graphs]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert catalog.stats.builds == 4
        assert len(catalog) == 4
