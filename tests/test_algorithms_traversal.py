"""BFS / SSSP / SSWP vs oracles, across every execution target."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import bfs, sssp, sswp
from repro.algorithms.reference import reference_bfs, reference_sssp, reference_sswp
from repro.core.udt import udt_transform
from repro.core.virtual import virtual_transform
from repro.core.weights import DumbWeight
from repro.engine.push import EngineOptions
from repro.engine.schedule import EdgeParallelScheduler, MaxWarpScheduler
from repro.graph.generators import path_graph, rmat


def all_targets(graph, k=6):
    """Every scheduling discipline an analytic can run under."""
    return {
        "node": graph,
        "virtual": virtual_transform(graph, k),
        "virtual+": virtual_transform(graph, k, coalesced=True),
        "maxwarp": MaxWarpScheduler(graph, 4),
        "edge": EdgeParallelScheduler(graph),
    }


class TestBFS:
    def test_matches_reference_all_targets(self, powerlaw_unweighted, hub_source):
        ref = reference_bfs(powerlaw_unweighted, hub_source)
        for name, target in all_targets(powerlaw_unweighted).items():
            result = bfs(target, hub_source)
            assert np.allclose(result.values, ref, equal_nan=True), name

    def test_on_udt_transformed(self, powerlaw_unweighted, hub_source):
        ref = reference_bfs(powerlaw_unweighted, hub_source)
        t = udt_transform(powerlaw_unweighted, 4, dumb_weight=DumbWeight.ZERO)
        result = bfs(t.graph, hub_source)
        assert np.allclose(t.read_values(result.values), ref, equal_nan=True)

    def test_path_graph_depth(self):
        g = path_graph(20)
        result = bfs(g, 0)
        assert result.values[-1] == 19
        # 19 propagation rounds plus the final no-change round
        assert result.num_iterations == 20

    def test_iterations_bounded_by_depth_plus_one(self, powerlaw_unweighted, hub_source):
        ref = reference_bfs(powerlaw_unweighted, hub_source)
        depth = int(ref[np.isfinite(ref)].max())
        result = bfs(powerlaw_unweighted, hub_source)
        assert result.num_iterations <= depth + 1


class TestSSSP:
    def test_matches_reference_all_targets(self, powerlaw_graph, hub_source):
        ref = reference_sssp(powerlaw_graph, hub_source)
        for name, target in all_targets(powerlaw_graph).items():
            result = sssp(target, hub_source)
            assert np.allclose(result.values, ref), name

    def test_virtual_iterations_equal_original(self, powerlaw_graph, hub_source):
        """Theorem 2 consequence: no extra iterations for virtual."""
        orig = sssp(powerlaw_graph, hub_source)
        virt = sssp(virtual_transform(powerlaw_graph, 4), hub_source)
        assert virt.num_iterations == orig.num_iterations

    def test_physical_needs_more_iterations(self, powerlaw_graph, hub_source):
        """The §6.5 effect: splitting stretches propagation paths."""
        orig = sssp(powerlaw_graph, hub_source)
        t = udt_transform(powerlaw_graph, 3)
        phys = sssp(t.graph, hub_source)
        assert phys.num_iterations > orig.num_iterations
        assert np.allclose(t.read_values(phys.values),
                           reference_sssp(powerlaw_graph, hub_source))

    def test_zero_weight_edges_handled(self):
        from repro.graph.builder import from_edge_list

        g = from_edge_list([(0, 1, 0.0), (1, 2, 0.0), (0, 2, 5.0)])
        assert sssp(g, 0).values.tolist() == [0.0, 0.0, 0.0]


class TestSSWP:
    def test_matches_reference_all_targets(self, powerlaw_graph, hub_source):
        ref = reference_sswp(powerlaw_graph, hub_source)
        for name, target in all_targets(powerlaw_graph).items():
            result = sswp(target, hub_source)
            assert np.allclose(result.values, ref), name

    def test_on_udt_with_infinity_weights(self, powerlaw_graph, hub_source):
        ref = reference_sswp(powerlaw_graph, hub_source)
        t = udt_transform(powerlaw_graph, 4, dumb_weight=DumbWeight.INFINITY)
        result = sswp(t.graph, hub_source)
        assert np.allclose(t.read_values(result.values), ref)

    def test_source_width_infinite(self, powerlaw_graph, hub_source):
        assert sswp(powerlaw_graph, hub_source).values[hub_source] == np.inf

    def test_bottleneck_semantics(self):
        from repro.graph.builder import from_edge_list

        # two routes to 2: width min(9, 1)=1 vs min(3, 3)=3
        g = from_edge_list([(0, 1, 9.0), (1, 2, 1.0), (0, 3, 3.0), (3, 2, 3.0)])
        assert sswp(g, 0).values[2] == 3.0


@given(
    seed=st.integers(min_value=0, max_value=60),
    k=st.integers(min_value=1, max_value=12),
    coalesced=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_sssp_virtual_equals_reference(seed, k, coalesced):
    """Property (Theorem 2): virtual scheduling — any K, any layout —
    never changes SSSP results on arbitrary weighted graphs."""
    graph = rmat(60, 500, seed=seed, weight_range=(1, 9))
    source = int(np.argmax(graph.out_degrees()))
    result = sssp(virtual_transform(graph, k, coalesced=coalesced), source)
    assert np.allclose(result.values, reference_sssp(graph, source))


@given(
    seed=st.integers(min_value=0, max_value=60),
    k=st.integers(min_value=2, max_value=12),
)
@settings(max_examples=30, deadline=None)
def test_sssp_udt_equals_reference(seed, k):
    """Property (Corollary 2): SSSP on UDT graphs projects correctly."""
    graph = rmat(60, 500, seed=seed, weight_range=(1, 9))
    source = int(np.argmax(graph.out_degrees()))
    t = udt_transform(graph, k)
    result = sssp(t.graph, source)
    assert np.allclose(t.read_values(result.values), reference_sssp(graph, source))
