"""Tests for the hardwired primitives and their method wrappers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.hardwired import (
    delta_stepping_sssp,
    direction_optimizing_bfs,
    gas_pagerank,
    pointer_jumping_cc,
)
from repro.algorithms.reference import (
    reference_bfs,
    reference_connected_components,
    reference_pagerank,
    reference_sssp,
)
from repro.baselines.hardwired import hardwired_methods
from repro.errors import EngineError
from repro.gpu.simulator import GPUSimulator
from repro.graph.builder import from_edge_list, to_undirected
from repro.graph.generators import path_graph, rmat, star


class TestDirectionOptimizingBFS:
    def test_matches_reference(self, powerlaw_unweighted, hub_source):
        ref = reference_bfs(powerlaw_unweighted, hub_source)
        result = direction_optimizing_bfs(powerlaw_unweighted, hub_source)
        assert np.allclose(result.values, ref, equal_nan=True)

    def test_switches_to_bottom_up_on_dense_frontier(self):
        # star with reciprocal edges: the level-1 frontier owns all edges
        g = star(200, bidirectional=True)
        result = direction_optimizing_bfs(g, 0)
        assert result.notes["bottom_up_levels"] >= 1
        assert np.allclose(result.values[1:], 1.0)

    def test_pure_top_down_with_tiny_alpha(self):
        # Beamer's switch fires when frontier_edges > remaining/alpha,
        # so alpha -> 0 disables bottom-up entirely.
        g = path_graph(30)
        result = direction_optimizing_bfs(g, 0, alpha=1e-9)
        assert result.notes["bottom_up_levels"] == 0
        assert result.values[-1] == 29

    def test_bottom_up_early_exit_saves_edges(self, powerlaw_symmetric, hub_source):
        """The point of bottom-up: far fewer edges examined than the
        full edge set on dense levels."""
        eager = direction_optimizing_bfs(powerlaw_symmetric, hub_source, alpha=100.0)
        classic = direction_optimizing_bfs(powerlaw_symmetric, hub_source, alpha=1e-9)
        assert np.allclose(eager.values, classic.values, equal_nan=True)
        assert eager.edges_processed < classic.edges_processed

    def test_bad_source(self, powerlaw_unweighted):
        with pytest.raises(EngineError):
            direction_optimizing_bfs(powerlaw_unweighted, -1)

    def test_simulator_records_levels(self, powerlaw_unweighted, hub_source):
        sim = GPUSimulator()
        result = direction_optimizing_bfs(powerlaw_unweighted, hub_source, simulator=sim)
        assert result.metrics.num_iterations == result.num_iterations


class TestDeltaStepping:
    def test_matches_dijkstra(self, powerlaw_graph, hub_source):
        ref = reference_sssp(powerlaw_graph, hub_source)
        result = delta_stepping_sssp(powerlaw_graph, hub_source)
        assert np.allclose(result.values, ref)

    @pytest.mark.parametrize("delta", [0.5, 2.0, 16.0, 1000.0])
    def test_any_delta_is_correct(self, powerlaw_graph, hub_source, delta):
        ref = reference_sssp(powerlaw_graph, hub_source)
        result = delta_stepping_sssp(powerlaw_graph, hub_source, delta=delta)
        assert np.allclose(result.values, ref)
        assert result.notes["delta"] == delta

    def test_huge_delta_is_bellman_ford_like(self, powerlaw_graph, hub_source):
        """delta -> inf degenerates to one bucket (more re-relaxation)."""
        fine = delta_stepping_sssp(powerlaw_graph, hub_source, delta=2.0)
        coarse = delta_stepping_sssp(powerlaw_graph, hub_source, delta=1e9)
        assert np.allclose(fine.values, coarse.values)

    def test_requires_weights(self, powerlaw_unweighted, hub_source):
        with pytest.raises(EngineError, match="weights"):
            delta_stepping_sssp(powerlaw_unweighted, hub_source)

    def test_bad_delta(self, powerlaw_graph, hub_source):
        with pytest.raises(EngineError, match="delta"):
            delta_stepping_sssp(powerlaw_graph, hub_source, delta=0.0)

    def test_negative_weight_rejected(self):
        g = from_edge_list([(0, 1, -1.0)])
        with pytest.raises(EngineError, match="non-negative"):
            delta_stepping_sssp(g, 0)


class TestPointerJumpingCC:
    def test_matches_union_find(self, powerlaw_symmetric):
        ref = reference_connected_components(powerlaw_symmetric)
        result = pointer_jumping_cc(powerlaw_symmetric)
        assert np.array_equal(result.values.astype(np.int64), ref)

    def test_logarithmic_rounds_vs_diameter(self):
        """On a long path, label propagation needs O(n) rounds; pointer
        jumping needs O(log n) — the structural ECL-CC advantage."""
        from repro.algorithms import connected_components

        g = to_undirected(path_graph(256))
        propagation = connected_components(g)
        jumping = pointer_jumping_cc(g)
        assert np.array_equal(
            jumping.values.astype(np.int64),
            propagation.values.astype(np.int64),
        )
        assert jumping.num_iterations < propagation.num_iterations / 5

    def test_singletons(self):
        g = from_edge_list([], num_nodes=5)
        result = pointer_jumping_cc(g)
        assert result.values.astype(np.int64).tolist() == [0, 1, 2, 3, 4]


class TestGASPageRank:
    def test_matches_reference(self, powerlaw_unweighted):
        ref = reference_pagerank(powerlaw_unweighted, tolerance=1e-12)
        result = gas_pagerank(powerlaw_unweighted, tolerance=1e-12)
        assert np.allclose(result.values, ref, atol=1e-9)

    def test_empty(self):
        assert gas_pagerank(from_edge_list([], num_nodes=0)).values.shape == (0,)

    def test_iterations_match_push_pr(self, powerlaw_unweighted):
        from repro.algorithms import pagerank

        push = pagerank(powerlaw_unweighted, tolerance=1e-12)
        gas = gas_pagerank(powerlaw_unweighted, tolerance=1e-12)
        assert gas.num_iterations == push.num_iterations


class TestMethodWrappers:
    def test_each_supports_exactly_its_algorithm(self):
        expectations = {
            "do-bfs": "bfs", "delta-sssp": "sssp", "ecl-cc": "cc", "gas-pr": "pr",
        }
        for method in hardwired_methods():
            target = expectations[method.name]
            for algorithm in ("bfs", "sssp", "sswp", "cc", "bc", "pr"):
                assert method.supports(algorithm) == (algorithm == target)

    def test_results_correct_through_wrapper(self):
        graph = rmat(200, 2000, seed=31, weight_range=(1, 8))
        source = int(np.argmax(graph.out_degrees()))
        refs = {
            "do-bfs": reference_bfs(graph.without_weights(), source),
            "delta-sssp": reference_sssp(graph, source),
            "ecl-cc": reference_connected_components(
                to_undirected(graph.without_weights())
            ),
            "gas-pr": reference_pagerank(graph.without_weights()),
        }
        for method in hardwired_methods():
            result = method.run(graph, method.algorithm, source)
            assert not result.oom
            if method.name == "ecl-cc":
                assert np.array_equal(result.values.astype(np.int64), refs[method.name])
            elif method.name == "gas-pr":
                assert np.allclose(result.values, refs[method.name], atol=1e-6)
            else:
                assert np.allclose(result.values, refs[method.name], equal_nan=True)

    def test_footprints_positive(self, powerlaw_graph):
        for method in hardwired_methods():
            assert method.footprint(powerlaw_graph, method.algorithm) > 0


@given(seed=st.integers(min_value=0, max_value=40))
@settings(max_examples=20, deadline=None)
def test_delta_stepping_random_graphs(seed):
    """Property: Δ-stepping equals Dijkstra on arbitrary graphs."""
    graph = rmat(50, 400, seed=seed, weight_range=(1, 20))
    source = int(np.argmax(graph.out_degrees()))
    result = delta_stepping_sssp(graph, source)
    assert np.allclose(result.values, reference_sssp(graph, source))


@given(seed=st.integers(min_value=0, max_value=40), alpha=st.floats(min_value=0.1, max_value=100.0))
@settings(max_examples=20, deadline=None)
def test_do_bfs_random_graphs(seed, alpha):
    """Property: direction switching never changes BFS results."""
    graph = rmat(50, 400, seed=seed)
    source = int(np.argmax(graph.out_degrees()))
    result = direction_optimizing_bfs(graph, source, alpha=alpha)
    assert np.allclose(result.values, reference_bfs(graph, source), equal_nan=True)
