"""Tests for the warp segmentation scheduler ([30], §1's other
thread-execution-model technique)."""

import numpy as np
import pytest

from repro.algorithms import sssp
from repro.algorithms.reference import reference_sssp
from repro.core.virtual import virtual_transform
from repro.engine.schedule import (
    NodeScheduler,
    ThreadBatch,
    VirtualScheduler,
    WarpSegmentationScheduler,
)
from repro.errors import EngineError
from repro.gpu.simulator import GPUSimulator
from repro.gpu.warp import warp_statistics
from repro.graph.builder import from_edge_list
from repro.graph.generators import rmat, star


class TestBatchConstruction:
    def test_contiguous_group_split_evenly(self):
        # 4 nodes with degrees 5,1,1,1 -> 8 edges over a 4-lane warp
        g = from_edge_list(
            [(0, t) for t in range(1, 6)] + [(1, 6), (2, 6), (3, 6)], num_nodes=7
        )
        sched = WarpSegmentationScheduler(g, warp_size=4)
        batch = sched.batch(np.array([0, 1, 2, 3]))
        assert batch.num_threads == 4
        assert batch.counts.tolist() == [2, 2, 2, 2]
        assert sorted(batch.edge_indices().tolist()) == list(range(8))

    def test_sources_derived_from_offsets(self):
        g = from_edge_list(
            [(0, t) for t in range(1, 6)] + [(1, 6), (2, 6), (3, 6)], num_nodes=7
        )
        batch = WarpSegmentationScheduler(g, warp_size=4).batch(np.array([0, 1, 2, 3]))
        src = batch.sources_per_edge()
        # the first 5 slots belong to node 0, then one each for 1,2,3
        assert src.tolist() == [0, 0, 0, 0, 0, 1, 2, 3]

    def test_non_contiguous_frontier_fallback(self):
        g = from_edge_list([(0, 1), (0, 2), (2, 3), (2, 1), (4, 0)], num_nodes=5)
        batch = WarpSegmentationScheduler(g, warp_size=2).batch(np.array([0, 4]))
        # nodes 0 and 4 are not adjacent in the edge array (node 2 sits
        # between): the scheduler falls back to per-node spans
        assert sorted(batch.edge_indices().tolist()) == [0, 1, 4]
        assert batch.sources_per_edge().tolist() == [0, 0, 4]

    def test_bad_warp_size(self, powerlaw_graph):
        with pytest.raises(EngineError):
            WarpSegmentationScheduler(powerlaw_graph, warp_size=0)

    def test_batch_requires_ownership_info(self):
        with pytest.raises(EngineError):
            ThreadBatch(None, np.array([1]), np.array([0]), np.array([1]))


class TestSemantics:
    def test_sssp_matches_reference(self, powerlaw_graph, hub_source):
        result = sssp(WarpSegmentationScheduler(powerlaw_graph), hub_source)
        assert np.allclose(result.values, reference_sssp(powerlaw_graph, hub_source))

    def test_iterations_match_node_scheduling(self, powerlaw_graph, hub_source):
        node = sssp(NodeScheduler(powerlaw_graph), hub_source)
        ws = sssp(WarpSegmentationScheduler(powerlaw_graph), hub_source)
        assert ws.num_iterations == node.num_iterations


class TestBalanceCharacter:
    def test_intra_warp_balance_is_perfect(self):
        """No lane exceeds ceil(warp_edges / 32): the warp's steps are
        bounded by the even split, whatever the degree mix."""
        g = rmat(64, 2000, seed=7)
        batch = WarpSegmentationScheduler(g).batch(np.arange(32))
        total = batch.total_edges
        assert batch.counts.max() <= -(-total // 32)

    def test_inter_warp_hub_residue_remains(self):
        """A hub's warp still takes ~d/32 steps: warp segmentation
        fixes intra-warp divergence only, the §2.3 residue Tigr's
        splitting removes."""
        hub = star(3200)  # degree 3200 hub + leaves
        sched = WarpSegmentationScheduler(hub)
        batch = sched.batch(sched.all_nodes())
        stats = warp_statistics(batch.trace())
        assert stats.steps.max() >= 3200 // 32

    def test_sits_between_baseline_and_tigr(self, hub_source):
        """On power-law SSSP: WS beats the plain baseline, Tigr-V+
        beats WS (it also removes the inter-warp residue)."""
        graph = rmat(2000, 40000, seed=12, weight_range=(1, 16))
        source = int(np.argmax(graph.out_degrees()))

        def timed(scheduler):
            sim = GPUSimulator()
            sssp(scheduler, source, simulator=sim)
            return sim.finish().total_time_ms

        baseline = timed(NodeScheduler(graph))
        segmented = timed(WarpSegmentationScheduler(graph))
        tigr = timed(
            VirtualScheduler(virtual_transform(graph, 10, coalesced=True))
        )
        assert segmented < baseline
        assert tigr < segmented
