"""AnalyticsService: concurrency, timeouts, cancellation, degradation."""

import threading
import time

import numpy as np
import pytest

from repro.algorithms import bfs, connected_components, pagerank, sssp
from repro.core.udt import udt_transform
from repro.core.virtual import virtual_transform
from repro.core.weights import DumbWeight
from repro.engine.push import EngineOptions
from repro.errors import ServiceError
from repro.graph.datasets import load_dataset
from repro.graph.generators import rmat
from repro.service import (
    AnalyticsService,
    GraphCatalog,
    QueryRequest,
    TransformArtifact,
)
from repro.service.planner import degrade_for_deadline, plan_query


@pytest.fixture
def graph():
    return rmat(150, 1100, seed=9, weight_range=(1, 8))


@pytest.fixture
def service(graph):
    with AnalyticsService(workers=2, queue_size=32) as svc:
        svc.register("g", graph)
        yield svc


class TestRequestValidation:
    def test_unknown_algorithm(self):
        with pytest.raises(ServiceError):
            QueryRequest("dijkstra", "g", sources=(0,))

    def test_source_required(self):
        with pytest.raises(ServiceError):
            QueryRequest("sssp", "g")

    def test_sourceless_rejects_sources(self):
        with pytest.raises(ServiceError):
            QueryRequest("pr", "g", sources=(0,))

    def test_unknown_transform(self):
        with pytest.raises(ServiceError):
            QueryRequest("sssp", "g", sources=(0,), transform="cliq")

    def test_bad_timeout(self):
        with pytest.raises(ServiceError):
            QueryRequest("sssp", "g", sources=(0,), timeout_s=0.0)

    def test_unknown_registered_graph(self, service):
        with pytest.raises(ServiceError, match="unknown graph"):
            service.run(QueryRequest.single("sssp", "nope", 0))


class TestResultsMatchDirectCalls:
    """The serving layer must be a pure optimisation, never a semantic."""

    def test_warm_query_zero_transform_work_on_standin(self):
        # Acceptance criterion: warm-cache query on a Table 3 stand-in
        # does zero transform work and matches repro.algorithms exactly.
        graph = load_dataset("pokec", scale=0.2)
        catalog = GraphCatalog()
        with AnalyticsService(catalog, workers=2) as service:
            service.register("pokec", graph)
            cold = service.run(QueryRequest.single("sssp", "pokec", 3))
            builds_after_cold = catalog.stats.builds
            warm = service.run(QueryRequest.single("sssp", "pokec", 7))
            assert not cold.cache_hit and warm.cache_hit
            if service.backend == "threads":
                # zero transform work on the warm path, per cache
                # counters (the process backend builds in worker-side
                # catalogs; its warm path is pinned by cache_hit above
                # and by tests/test_service_process_backend.py)
                assert catalog.stats.builds == builds_after_cold == 1
                assert catalog.stats.hits >= 1
            direct = sssp(virtual_transform(graph, 10, coalesced=True), 7)
            assert np.array_equal(warm.value(7), direct.values)

    def test_auto_plan_matches_tigr_vplus(self, service, graph):
        result = service.run(QueryRequest.single("bfs", "g", 0))
        direct = bfs(
            virtual_transform(graph.without_weights(), 10, coalesced=True), 0
        )
        assert result.transform == "virtual+"
        assert np.array_equal(result.value(0), direct.values)

    def test_udt_plan_projects_back(self, service, graph):
        result = service.run(
            QueryRequest.single("sssp", "g", 2, transform="udt", degree_bound=6)
        )
        transformed = udt_transform(graph, 6, dumb_weight=DumbWeight.ZERO)
        direct = sssp(transformed.graph, 2)
        assert np.array_equal(
            result.value(2), transformed.read_values(direct.values)
        )
        assert len(result.value(2)) == graph.num_nodes

    def test_none_plan_runs_raw_csr(self, service, graph):
        result = service.run(QueryRequest.single("sssp", "g", 0, transform="none"))
        assert result.transform == "none"
        assert np.array_equal(result.value(0), sssp(graph, 0).values)

    def test_cc_symmetrized(self, service, graph):
        result = service.run(QueryRequest("cc", "g", transform="none"))
        from repro.graph.builder import to_undirected

        direct = connected_components(to_undirected(graph.without_weights()))
        assert np.array_equal(result.value(), direct.values)

    def test_pr_on_virtual(self, service, graph):
        result = service.run(QueryRequest("pr", "g"))
        direct = pagerank(
            virtual_transform(graph.without_weights(), 10, coalesced=True)
        )
        assert np.allclose(result.value(), direct.values)

    def test_inline_graph_without_registration(self, graph):
        with AnalyticsService(workers=1) as service:
            result = service.run(QueryRequest.single("bfs", graph, 0))
            assert result.ok

    def test_udt_rejected_for_pr(self, service):
        result = service.run(QueryRequest("pr", "g", transform="udt"))
        assert not result.ok and "udt cannot serve pr" in result.error


class TestConcurrency:
    def test_contended_submissions_all_complete(self, graph):
        catalog = GraphCatalog()
        with AnalyticsService(catalog, workers=4, queue_size=128) as service:
            service.register("g", graph)
            tickets = [
                service.submit(QueryRequest.single("sssp", "g", s % graph.num_nodes))
                for s in range(40)
            ]
            results = [t.result(60) for t in tickets]
            assert all(r.ok for r in results)
            if service.backend == "threads":
                # single-flight: 40 cold-ish queries build exactly once
                # (process workers build in their own catalogs, at most
                # once per worker thanks to the shared disk tier)
                assert catalog.stats.builds == 1
            reference = sssp(virtual_transform(graph, 10, coalesced=True), 5)
            assert np.array_equal(results[5].value(5), reference.values)

    def test_concurrent_submitters(self, graph):
        with AnalyticsService(workers=4, queue_size=256) as service:
            service.register("g", graph)
            results = []
            lock = threading.Lock()

            def client(base):
                mine = [
                    service.run(QueryRequest.single("bfs", "g", (base + i) % 50))
                    for i in range(5)
                ]
                with lock:
                    results.extend(mine)

            threads = [threading.Thread(target=client, args=(i,)) for i in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(results) == 30 and all(r.ok for r in results)

    def test_backpressure_nonblocking_submit(self, graph):
        # one worker stuck on a slow item + queue of 1 -> third submit
        # fails.  Thread backend pinned: the stall comes from
        # monkeypatching _prepare, which process workers never call.
        with AnalyticsService(workers=1, queue_size=1, backend="threads") as service:
            service.register("g", graph)
            blocker = threading.Event()
            original = service._prepare

            def slow_prepare(g, algorithm):
                blocker.wait(5)
                return original(g, algorithm)

            service._prepare = slow_prepare
            first = service.submit(QueryRequest.single("bfs", "g", 0))
            time.sleep(0.05)  # let the worker claim it and block
            second = service.submit(
                QueryRequest.single("bfs", "g", 1), block=False
            )
            with pytest.raises(ServiceError, match="queue full"):
                service.submit(QueryRequest.single("bfs", "g", 2), block=False)
            blocker.set()
            assert first.result(10).ok and second.result(10).ok

    def test_queue_depth_tracked(self, service):
        service.run(QueryRequest.single("bfs", "g", 0))
        assert service.metrics.max_queue_depth >= 1
        assert service.metrics.queue_depth == 0

    def test_submit_after_close_rejected(self, graph):
        service = AnalyticsService(workers=1)
        service.register("g", graph)
        service.close()
        with pytest.raises(ServiceError, match="stopped"):
            service.submit(QueryRequest.single("bfs", "g", 0))

    def test_close_drains_queued_work(self, graph):
        service = AnalyticsService(workers=1, queue_size=64)
        service.register("g", graph)
        tickets = [
            service.submit(QueryRequest.single("bfs", "g", s)) for s in range(8)
        ]
        service.close(wait=True)
        assert all(t.result(0.1).ok for t in tickets)


class TestTimeoutsAndDegradation:
    def test_expired_in_queue_fails_fast(self, graph):
        # thread backend pinned: the stall monkeypatches _prepare
        with AnalyticsService(workers=1, queue_size=16, backend="threads") as service:
            service.register("g", graph)
            blocker = threading.Event()
            original = service._prepare

            def slow_prepare(g, algorithm):
                blocker.wait(5)
                return original(g, algorithm)

            service._prepare = slow_prepare
            service.submit(QueryRequest.single("bfs", "g", 0))
            time.sleep(0.05)
            doomed = service.submit(
                QueryRequest.single("bfs", "g", 1, timeout_s=0.01)
            )
            time.sleep(0.1)  # deadline passes while queued
            blocker.set()
            result = doomed.result(10)
            assert not result.ok and "timed out" in result.error
            assert service.metrics.queries_timed_out >= 1

    def test_tight_deadline_cold_cache_degrades(self, graph):
        # estimated UDT build >> remaining deadline -> raw-CSR fallback
        plan = plan_query(
            QueryRequest.single("sssp", "g", 0, transform="udt"), graph
        )
        degraded = degrade_for_deadline(
            plan, graph, remaining_s=0.0, artifact_cached=False
        )
        assert degraded.transform == "none" and degraded.degraded

    def test_warm_cache_never_degrades(self, graph):
        plan = plan_query(
            QueryRequest.single("sssp", "g", 0, transform="udt"), graph
        )
        kept = degrade_for_deadline(
            plan, graph, remaining_s=0.0, artifact_cached=True
        )
        assert kept is plan

    def test_degraded_result_still_correct(self, graph):
        big = rmat(4000, 60000, seed=2, weight_range=(1, 5))
        with AnalyticsService(workers=1) as service:
            service.register("big", big)
            result = service.run(
                QueryRequest.single(
                    "sssp", "big", 0, transform="udt", timeout_s=1e-4
                )
            )
            if result.ok:  # may also time out in queue on a loaded box
                assert result.degraded and result.transform == "none"
                assert np.array_equal(result.value(0), sssp(big, 0).values)
                assert service.metrics.queries_degraded == 1

    def test_default_timeout_applied(self, graph):
        with AnalyticsService(workers=1, default_timeout_s=30.0) as service:
            service.register("g", graph)
            ticket = service.submit(QueryRequest.single("bfs", "g", 0))
            assert ticket.request.timeout_s == 30.0
            assert ticket.result(10).ok


class TestCancellation:
    def test_cancel_while_queued(self, graph):
        # thread backend pinned: the stall monkeypatches _prepare
        with AnalyticsService(workers=1, queue_size=16, backend="threads") as service:
            service.register("g", graph)
            blocker = threading.Event()
            original = service._prepare

            def slow_prepare(g, algorithm):
                blocker.wait(5)
                return original(g, algorithm)

            service._prepare = slow_prepare
            service.submit(QueryRequest.single("bfs", "g", 0))
            time.sleep(0.05)
            victim = service.submit(QueryRequest.single("bfs", "g", 1))
            assert victim.cancel() is True
            blocker.set()
            result = victim.result(10)
            assert not result.ok and result.error == "cancelled"
        # the cancelled claim is recorded when the worker drains the
        # item; close() above joined the workers, so it has happened.
        assert service.metrics.queries_cancelled == 1

    def test_cancel_after_completion_refused(self, service):
        ticket = service.submit(QueryRequest.single("bfs", "g", 0))
        ticket.result(30)
        assert ticket.cancel() is False

    def test_result_wait_timeout(self, graph):
        # thread backend pinned: the stall monkeypatches _prepare
        with AnalyticsService(workers=1, backend="threads") as service:
            service.register("g", graph)
            blocker = threading.Event()
            original = service._prepare

            def slow_prepare(g, algorithm):
                blocker.wait(5)
                return original(g, algorithm)

            service._prepare = slow_prepare
            ticket = service.submit(QueryRequest.single("bfs", "g", 0))
            with pytest.raises(ServiceError, match="not finished"):
                ticket.result(0.05)
            blocker.set()
            assert ticket.result(10).ok


class TestErrorsAndMetrics:
    def test_weighted_algorithm_on_unweighted_graph(self, graph):
        with AnalyticsService(workers=1) as service:
            service.register("uw", graph.without_weights())
            result = service.run(QueryRequest.single("sssp", "uw", 0))
            assert not result.ok and "requires a weighted graph" in result.error
            assert service.metrics.queries_failed == 1

    def test_metrics_summary_shape(self, service):
        service.run(QueryRequest.single("sssp", "g", 0))
        service.run(QueryRequest.single("sssp", "g", 1))
        summary = service.metrics.summary()
        assert summary["queries_total"] == 2
        assert summary["cache_hit_rate"] == 0.5
        if service.backend == "threads":
            assert summary["catalog_builds"] == 1
        for key in ("worker_restarts", "ipc_bytes", "hydrate_hits"):
            assert key in summary
        for stage in ("queue", "plan", "transform", "execute", "total"):
            assert f"{stage}_p50_ms" in summary
            assert f"{stage}_p95_ms" in summary

    def test_stage_timings_populated(self, service):
        result = service.run(QueryRequest.single("sssp", "g", 0))
        timings = result.timings.as_dict()
        assert timings["total_s"] > 0
        assert timings["execute_s"] > 0
        assert result.timings.total_s == pytest.approx(
            timings["queue_s"] + timings["plan_s"]
            + timings["transform_s"] + timings["execute_s"]
        )

    def test_custom_engine_options_respected(self, service, graph):
        options = EngineOptions(worklist=False)
        result = service.run(
            QueryRequest.single("sssp", "g", 0, options=options)
        )
        direct = sssp(
            virtual_transform(graph, 10, coalesced=True), 0, options=options
        )
        assert np.array_equal(result.value(0), direct.values)
