"""Tests for graph validation, multi-source analytics, and the
diameter-increase bound."""

import numpy as np
import pytest

from repro.algorithms.multi_source import (
    approximate_bc,
    closeness_centrality,
    multi_source_distances,
)
from repro.algorithms.reference import reference_bc, reference_sssp
from repro.core.analysis import diameter_increase_bound
from repro.core.udt import udt_transform
from repro.core.virtual import virtual_transform
from repro.errors import EngineError, TransformError
from repro.graph.builder import from_edge_list, to_undirected
from repro.graph.generators import path_graph, rmat, star
from repro.graph.stats import estimate_diameter
from repro.graph.validate import (
    count_isolated_nodes,
    count_parallel_edges,
    count_self_loops,
    is_symmetric,
    validation_report,
)


class TestValidation:
    def test_clean_graph(self):
        g = from_edge_list([(0, 1, 2.0), (1, 0, 2.0)])
        report = validation_report(g)
        assert report.is_simple
        assert report.is_symmetric
        assert report.suitable_for("sssp")

    def test_self_loops_counted(self):
        g = from_edge_list([(0, 0), (0, 1), (1, 1)])
        assert count_self_loops(g) == 2
        assert not validation_report(g).is_simple

    def test_parallel_edges_counted(self):
        g = from_edge_list([(0, 1), (0, 1), (0, 1), (1, 0)])
        assert count_parallel_edges(g) == 2

    def test_isolated_nodes(self):
        g = from_edge_list([(0, 1)], num_nodes=5)
        assert count_isolated_nodes(g) == 3

    def test_asymmetric_detected(self):
        assert not is_symmetric(from_edge_list([(0, 1)]))
        assert is_symmetric(to_undirected(from_edge_list([(0, 1)])))

    def test_negative_weights_block_sssp(self):
        g = from_edge_list([(0, 1, -2.0)])
        report = validation_report(g)
        assert report.has_negative_weights
        assert not report.suitable_for("sssp")
        assert report.suitable_for("sswp")
        assert report.suitable_for("bfs")

    def test_nonfinite_weights(self):
        g = from_edge_list([(0, 1, np.inf)])
        report = validation_report(g)
        assert report.has_nonfinite_weights
        assert not report.suitable_for("sswp")

    def test_unweighted_unsuitable_for_sssp(self):
        report = validation_report(from_edge_list([(0, 1)]))
        assert not report.suitable_for("sssp")

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            validation_report(from_edge_list([(0, 1)])).suitable_for("tc")

    def test_empty_graph(self):
        report = validation_report(from_edge_list([], num_nodes=0))
        assert report.is_simple and report.num_edges == 0


class TestDiameterBound:
    def test_bound_holds_empirically(self):
        """§3.2: UDT's diameter increase stays within O(D log_K(...))."""
        for seed in (0, 1, 2):
            graph = to_undirected(rmat(150, 1200, seed=seed))
            before = estimate_diameter(graph, num_sources=10, seed=0)
            for k in (2, 4, 8):
                result = udt_transform(graph, k)
                after = estimate_diameter(result.graph, num_sources=10, seed=0)
                bound = diameter_increase_bound(
                    before, graph.num_edges, graph.max_out_degree(), k
                )
                assert after <= bound, (seed, k, before, after, bound)

    def test_star_worst_case(self):
        g = star(1000)
        result = udt_transform(g, 2)
        after = estimate_diameter(result.graph, num_sources=4, seed=0)
        bound = diameter_increase_bound(1, g.num_edges, 1000, 2)
        assert after <= bound

    def test_k1_rejected(self):
        with pytest.raises(TransformError):
            diameter_increase_bound(5, 100, 10, 1)


class TestMultiSourceDistances:
    def test_rows_match_single_source(self, powerlaw_graph):
        sources = [0, 5, 9]
        rows = multi_source_distances(powerlaw_graph, sources)
        for row, src in zip(rows, sources):
            assert np.allclose(row, reference_sssp(powerlaw_graph, src))

    def test_empty_sources(self, powerlaw_graph):
        rows = multi_source_distances(powerlaw_graph, [])
        assert rows.shape == (0, powerlaw_graph.num_nodes)

    def test_unweighted_mode(self, powerlaw_unweighted):
        rows = multi_source_distances(powerlaw_unweighted, [0], weighted=False)
        assert rows.shape == (1, powerlaw_unweighted.num_nodes)


class TestCloseness:
    def test_path_graph_shape(self):
        # in 0->1->2->3, node 0 reaches everyone: highest closeness of
        # the *sources*; computed over all sources exactly.
        g = path_graph(4)
        c = closeness_centrality(g, weighted=False)
        # node 3 is reached by all at distances (3,2,1): closeness
        # 1/3+1/2+1 for incoming... harmonic closeness here accumulates
        # at the *reached* node.
        assert c[3] == pytest.approx(1 / 3 + 1 / 2 + 1)
        assert c[0] == 0.0  # nothing reaches node 0

    def test_sampling_unbiased_scale(self, powerlaw_unweighted):
        exact = closeness_centrality(powerlaw_unweighted, weighted=False)
        sampled = closeness_centrality(
            powerlaw_unweighted, num_sources=powerlaw_unweighted.num_nodes // 2,
            weighted=False, seed=1,
        )
        # correlated and on the same scale
        ratio = sampled.sum() / max(exact.sum(), 1e-12)
        assert 0.5 < ratio < 2.0

    def test_virtual_target_identical(self, powerlaw_unweighted):
        exact = closeness_centrality(powerlaw_unweighted, num_sources=8,
                                     weighted=False, seed=3)
        virt = closeness_centrality(
            virtual_transform(powerlaw_unweighted, 8), num_sources=8,
            weighted=False, seed=3,
        )
        assert np.allclose(exact, virt)

    def test_bad_source(self, powerlaw_unweighted):
        with pytest.raises(EngineError):
            closeness_centrality(powerlaw_unweighted, sources=[-4])


class TestApproximateBC:
    def test_all_sources_exact(self):
        g = rmat(60, 400, seed=9)
        exact = reference_bc(g)  # all sources
        got = approximate_bc(g)
        assert np.allclose(got, exact)

    def test_sampled_correlates(self):
        g = rmat(80, 600, seed=10)
        exact = reference_bc(g)
        sampled = approximate_bc(g, num_sources=40, seed=2)
        top_exact = set(np.argsort(exact)[-5:].tolist())
        top_sampled = set(np.argsort(sampled)[-5:].tolist())
        assert len(top_exact & top_sampled) >= 3

    def test_virtual_target(self):
        g = rmat(60, 400, seed=9)
        exact = approximate_bc(g, num_sources=10, seed=1)
        virt = approximate_bc(virtual_transform(g, 6), num_sources=10, seed=1)
        assert np.allclose(exact, virt)
