"""Theorem 2 in its full generality, property-tested.

The theorem claims virtual split transformations preserve results for
*all* push-based vertex-centric analyses — not just the six the paper
ships.  These tests generate arbitrary monotone vertex programs
(random relax functions from a closed family × MIN/MAX reductions ×
random graphs × random degree bounds) and assert every scheduler —
node, virtual (both layouts), max-warp, edge-parallel, warp
segmentation — reaches the identical fixed point in the identical
number of iterations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.virtual import virtual_transform
from repro.engine.program import PushProgram, ReduceOp
from repro.engine.push import run_push
from repro.engine.schedule import (
    EdgeParallelScheduler,
    MaxWarpScheduler,
    NodeScheduler,
    VirtualScheduler,
    WarpSegmentationScheduler,
)
from repro.graph.csr import NODE_DTYPE
from repro.graph.generators import rmat

#: the closed family of relax functions: (name, fn(src, w), needs_weights)
RELAX_FAMILY = [
    ("additive", lambda src, w: src + w, True),
    ("unit-hop", lambda src, w: src + 1.0, False),
    ("bottleneck", lambda src, w: np.minimum(src, w), True),
    ("amplify", lambda src, w: src * 1.5 + w, True),
    ("max-edge", lambda src, w: np.maximum(src, w), True),
]


class SyntheticProgram(PushProgram):
    """A vertex program assembled from the strategy's choices."""

    def __init__(self, relax_fn, needs_weights, reduce_op, init_value):
        self.name = "synthetic"
        self._relax = relax_fn
        self.needs_weights = needs_weights
        self.reduce = reduce_op
        self._init = init_value

    def initial_values(self, num_nodes, source):
        values = np.full(num_nodes, self.reduce.identity)
        values[source] = self._init
        return values

    def initial_frontier(self, num_nodes, source):
        return np.asarray([source], dtype=NODE_DTYPE)

    def relax(self, src_values, edge_weights):
        return self._relax(src_values, edge_weights)


@st.composite
def programs(draw):
    name, fn, needs_w = draw(st.sampled_from(RELAX_FAMILY))
    # pair each relax with the reduction that makes it monotone
    if name in ("additive", "unit-hop", "amplify"):
        reduce_op = ReduceOp.MIN
        init = 0.0
    else:
        reduce_op = ReduceOp.MAX
        init = float(np.inf) if name == "bottleneck" else 0.0
    return SyntheticProgram(fn, needs_w, reduce_op, init)


@given(
    program=programs(),
    seed=st.integers(min_value=0, max_value=40),
    k=st.integers(min_value=1, max_value=12),
    coalesced=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_theorem2_any_program_any_k(program, seed, k, coalesced):
    """Virtual scheduling preserves any monotone push analytic."""
    graph = rmat(50, 400, seed=seed, weight_range=(1, 9))
    source = int(np.argmax(graph.out_degrees()))
    reference = run_push(NodeScheduler(graph), program, source)
    virtual = virtual_transform(graph, k, coalesced=coalesced)
    result = run_push(VirtualScheduler(virtual), program, source)
    assert np.allclose(result.values, reference.values, equal_nan=True)
    assert result.num_iterations == reference.num_iterations


@given(program=programs(), seed=st.integers(min_value=0, max_value=25))
@settings(max_examples=30, deadline=None)
def test_every_scheduler_agrees(program, seed):
    """All five scheduling disciplines reach the same fixed point."""
    graph = rmat(40, 300, seed=seed, weight_range=(1, 9))
    source = int(np.argmax(graph.out_degrees()))
    reference = run_push(NodeScheduler(graph), program, source)
    schedulers = [
        VirtualScheduler(virtual_transform(graph, 4)),
        VirtualScheduler(virtual_transform(graph, 4, coalesced=True)),
        MaxWarpScheduler(graph, 4),
        EdgeParallelScheduler(graph),
        WarpSegmentationScheduler(graph),
    ]
    for scheduler in schedulers:
        result = run_push(scheduler, program, source)
        assert np.allclose(result.values, reference.values, equal_nan=True), (
            type(scheduler).__name__
        )
