"""Kernel-backend registry and cost-model tests.

This module is the parity fixture every entry in
``repro.core.applicability.KERNEL_BACKEND_EXPECTATIONS`` points at
(rule KERN001): for each JIT backend available on this machine it
asserts bitwise equality with the numpy baseline on every engine
(push, pull, lanes, adaptive) and every certified program family —
and that the fused path actually *engaged*, so a silently-declining
backend cannot pass as "equal".  The cost model's calibration cache
and strategy predictions are covered here too.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.cc import connected_components
from repro.algorithms.multi_source import multi_source_distances
from repro.algorithms.pagerank import pagerank
from repro.algorithms.programs import (
    BFSProgram,
    CCProgram,
    SSSPProgram,
    SSWPProgram,
)
from repro.algorithms.sssp import sssp
from repro.algorithms.sswp import sswp
from repro.core.applicability import KERNEL_BACKEND_EXPECTATIONS
from repro.engine import costmodel, kernels
from repro.engine.adaptive import AdaptiveOptions, run_adaptive
from repro.engine.pull import run_pull
from repro.engine.push import EngineOptions, run_push, run_push_lanes
from repro.engine.schedule import NodeScheduler
from repro.errors import EngineError
from repro.graph.generators import rmat
from repro.service import replay_trace

TRACES = Path(__file__).parent / "traces"

#: JIT backends this machine can actually run; parametrizing over the
#: list keeps the suite green on boxes with no compiler and no numba.
JITS = kernels.jit_backends()


@pytest.fixture
def graph():
    return rmat(600, 4_000, seed=5, weight_range=(1.0, 8.0))


@pytest.fixture
def fresh_profile():
    """Reset the cached cost-model profile around a test."""
    costmodel.set_profile(None)
    yield
    costmodel.set_profile(None)


def _values(algorithm, graph, backend):
    options = EngineOptions(kernel_backend=backend)
    if algorithm == "bfs":
        return bfs(graph.without_weights(), 0, options=options).values
    if algorithm == "sssp":
        return sssp(graph, 0, options=options).values
    if algorithm == "sswp":
        return sswp(graph, 0, options=options).values
    if algorithm == "cc":
        return connected_components(graph, options=options).values
    if algorithm == "pr":
        return pagerank(graph, max_iterations=15, options=options).values
    raise AssertionError(algorithm)


class TestRegistry:
    def test_core_backends_registered(self):
        assert {"numpy", "cjit", "numba"} <= set(kernels.registered_backends())

    def test_every_backend_is_certified(self):
        # the runtime half of rule KERN001
        for name in kernels.registered_backends():
            expectation = KERNEL_BACKEND_EXPECTATIONS[name]
            assert expectation.parity_fixture
            assert expectation.jit == kernels.get_backend(name).jit

    def test_unknown_backend_fails_loudly(self):
        with pytest.raises(EngineError, match="unknown kernel backend"):
            kernels.get_backend("simd-unproven")
        with pytest.raises(EngineError, match="unknown kernel backend"):
            kernels.resolve_backend("simd-unproven")

    def test_numpy_backend_declines_everything(self, graph):
        backend = kernels.get_backend("numpy")
        before = backend.engaged
        values = _values("sssp", graph, "numpy")
        assert backend.engaged == before  # base class never engages
        assert np.isfinite(values).any()

    def test_unavailable_backend_degrades_to_numpy(self, monkeypatch):
        class MissingBackend(kernels.KernelBackend):
            name = "missing-for-test"
            jit = True

            def is_available(self):
                return False

            def availability_note(self):
                return "simulated absence"

        monkeypatch.setitem(
            kernels._REGISTRY, "missing-for-test", MissingBackend()
        )
        monkeypatch.setattr(kernels, "_warned_unavailable", set())
        with pytest.warns(RuntimeWarning, match="simulated absence"):
            backend = kernels.resolve_backend("missing-for-test")
        assert backend.name == "numpy"
        # the warning fires once, not per launch
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert kernels.resolve_backend("missing-for-test").name == "numpy"

    def test_env_var_drives_default_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
        assert kernels.resolve_backend(None, edges=10**9).name == "numpy"


class TestSpecFor:
    def test_certified_programs_map_to_specs(self):
        for program, relax, reduce in (
            (BFSProgram(), kernels.RELAX_ADDITIVE, kernels.REDUCE_MIN),
            (SSSPProgram(), kernels.RELAX_ADDITIVE, kernels.REDUCE_MIN),
            (SSWPProgram(), kernels.RELAX_WIDEST, kernels.REDUCE_MAX),
            (CCProgram(), kernels.RELAX_PROPAGATION, kernels.REDUCE_MIN),
        ):
            spec = kernels.spec_for(program)
            assert spec is not None
            assert spec.relax == relax
            assert spec.reduce == reduce

    def test_program_with_custom_hooks_is_refused(self):
        class FilteredSSSP(SSSPProgram):
            def filter_pushes(self, candidates, src_values):
                return candidates < 3.0

        assert kernels.spec_for(FilteredSSSP()) is None


class TestNumbaImportBlock:
    """The numba backend must degrade, not crash, when numba is absent.

    The block is simulated by failing the module-finder probe, so the
    test is meaningful both on machines without numba (tier-1) and in
    the CI kernels job where numba is installed.
    """

    def test_absent_numba_reports_unavailable(self, monkeypatch):
        import importlib.util

        backend = kernels.NumbaBackend()

        def missing(name, *args, **kwargs):
            if name == "numba":
                return None
            return importlib.util.find_spec(name, *args, **kwargs)

        monkeypatch.setattr(importlib.util, "find_spec", missing)
        assert not backend.is_available()
        assert "not installed" in backend.availability_note()

    def test_engines_fall_back_when_numba_requested_but_absent(
        self, graph, monkeypatch
    ):
        backend = kernels.NumbaBackend()
        monkeypatch.setattr(backend, "is_available", lambda: False)
        monkeypatch.setitem(kernels._REGISTRY, "numba", backend)
        monkeypatch.setattr(kernels, "_warned_unavailable", set())
        with pytest.warns(RuntimeWarning, match="falling back to numpy"):
            values = _values("sssp", graph, "numba")
        baseline = _values("sssp", graph, "numpy")
        np.testing.assert_array_equal(values, baseline)


@pytest.mark.skipif(not JITS, reason="no JIT kernel backend available")
class TestJitParity:
    """Bitwise parity of every available JIT backend with numpy."""

    @pytest.mark.parametrize("backend", JITS)
    @pytest.mark.parametrize("algorithm", ["bfs", "sssp", "sswp", "cc", "pr"])
    def test_push_parity_per_algorithm(self, graph, backend, algorithm):
        engaged_before = kernels.get_backend(backend).engaged
        jit_values = _values(algorithm, graph, backend)
        assert kernels.get_backend(backend).engaged > engaged_before
        np.testing.assert_array_equal(
            _values(algorithm, graph, "numpy"), jit_values
        )

    @pytest.mark.parametrize("backend", JITS)
    def test_lanes_parity_generic_and_bitpacked(self, graph, backend):
        sources = [0, 3, 7, 11]
        for weighted in (True, False):
            target = graph if weighted else graph.without_weights()
            base = multi_source_distances(
                target, sources, weighted=weighted, mode="lanes",
                options=EngineOptions(kernel_backend="numpy"),
            )
            jit = multi_source_distances(
                target, sources, weighted=weighted, mode="lanes",
                options=EngineOptions(kernel_backend=backend),
            )
            np.testing.assert_array_equal(base, jit)

    @pytest.mark.parametrize("backend", JITS)
    def test_pull_parity(self, graph, backend):
        reverse = graph.reverse()
        sched = NodeScheduler(reverse)
        base = run_pull(
            sched, SSSPProgram(), graph, 0,
            options=EngineOptions(kernel_backend="numpy"),
        )
        jit = run_pull(
            sched, SSSPProgram(), graph, 0,
            options=EngineOptions(kernel_backend=backend),
        )
        np.testing.assert_array_equal(base.values, jit.values)

    @pytest.mark.parametrize("backend", JITS)
    def test_adaptive_parity_including_direction_trace(self, graph, backend):
        hop = graph.without_weights()
        base = run_adaptive(
            hop, BFSProgram(), 0,
            options=AdaptiveOptions(kernel_backend="numpy"),
        )
        jit = run_adaptive(
            hop, BFSProgram(), 0,
            options=AdaptiveOptions(kernel_backend=backend),
        )
        np.testing.assert_array_equal(base.values, jit.values)
        # the backend must not perturb the push/pull schedule either
        assert base.push_iterations == jit.push_iterations
        assert base.pull_iterations == jit.pull_iterations

    @pytest.mark.parametrize("backend", JITS)
    def test_sync_relaxation_blocks_decline_but_match(self, graph, backend):
        # read aliases write under sync relaxation; the fused kernels
        # must decline and the buffered numpy path still runs
        options = EngineOptions(
            kernel_backend=backend, sync_relaxation_blocks=4
        )
        base = run_push(
            NodeScheduler(graph), SSSPProgram(), 0,
            options=EngineOptions(sync_relaxation_blocks=4,
                                  kernel_backend="numpy"),
        )
        jit = run_push(NodeScheduler(graph), SSSPProgram(), 0, options=options)
        np.testing.assert_array_equal(base.values, jit.values)

    @pytest.mark.parametrize("backend", JITS)
    def test_golden_trace_replays_digest_clean_under_jit(
        self, backend, monkeypatch
    ):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", backend)
        report = replay_trace(str(TRACES / "mixed.jsonl"), workers=2)
        assert report.digests_checked == report.requests_submitted
        assert report.ok, "\n".join(str(m) for m in report.mismatches)


class TestCalibrationCache:
    def test_profile_round_trips_through_disk(
        self, tmp_path, monkeypatch, fresh_profile
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        profile = costmodel.BUILTIN_PROFILE
        saved_to = costmodel.save_profile(profile)
        assert saved_to == str(tmp_path / costmodel.PROFILE_FILENAME)
        loaded = costmodel.load_profile()
        assert loaded == profile
        # get_profile prefers the disk cache over the builtin
        costmodel.set_profile(None)
        assert costmodel.get_profile() == profile

    def test_missing_and_stale_profiles_are_ignored(
        self, tmp_path, monkeypatch, fresh_profile
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert costmodel.load_profile() is None
        stale = costmodel.BUILTIN_PROFILE.to_dict()
        stale["version"] = costmodel.PROFILE_VERSION + 1
        path = tmp_path / costmodel.PROFILE_FILENAME
        path.write_text(__import__("json").dumps(stale))
        assert costmodel.load_profile() is None
        assert costmodel.get_profile() is costmodel.BUILTIN_PROFILE

    def test_corrupt_profile_warns_and_falls_back(
        self, tmp_path, monkeypatch, fresh_profile
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        (tmp_path / costmodel.PROFILE_FILENAME).write_text("{not json")
        with pytest.warns(RuntimeWarning, match="ignoring"):
            assert costmodel.load_profile() is None

    def test_smoke_calibration_measures_and_saves(
        self, tmp_path, monkeypatch, fresh_profile
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        profile, saved_to = costmodel.calibrate_and_save(scale=0.02, repeats=1)
        assert profile.source == "measured"
        assert profile.push_per_edge_s > 0
        assert set(profile.lanes) == set(costmodel.LANE_FAMILIES)
        assert os.path.exists(saved_to)
        assert costmodel.get_profile() == profile


class TestCostModelPredictions:
    BIG = 1_000_000  # edges: firmly in the per-edge-dominated regime
    TINY = 50  # edges: firmly in the overhead-dominated regime

    def test_loop_cost_is_monotone_in_sources(self):
        profile = costmodel.BUILTIN_PROFILE
        costs = [
            profile.multisource_cost(
                "loop", algorithm="bfs", num_sources=s, num_edges=self.BIG
            )
            for s in (1, 2, 4, 8, 16)
        ]
        assert costs == sorted(costs)
        assert costs[0] < costs[-1]

    def test_lanes_cost_is_monotone_in_sources_and_edges(self):
        profile = costmodel.BUILTIN_PROFILE
        by_sources = [
            profile.multisource_cost(
                "lanes", algorithm="bfs", num_sources=s, num_edges=self.BIG
            )
            for s in (2, 16, 64, 65, 256)
        ]
        assert by_sources == sorted(by_sources)
        by_edges = [
            profile.multisource_cost(
                "lanes", algorithm="bfs", num_sources=8, num_edges=m
            )
            for m in (10**3, 10**5, 10**7)
        ]
        assert by_edges == sorted(by_edges)

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown multisource mode"):
            costmodel.BUILTIN_PROFILE.multisource_cost(
                "warp", algorithm="bfs", num_sources=2, num_edges=10
            )

    def test_single_source_always_loops(self):
        profile = costmodel.BUILTIN_PROFILE
        for m in (self.TINY, self.BIG):
            assert profile.choose_multisource_mode(
                algorithm="sssp", num_sources=1, num_edges=m
            ) == "loop"

    def test_tiny_graphs_collapse_to_lanes(self):
        # the service's batch-collapse behavior: on overhead-dominated
        # graphs one lane pass replaces S whole runs
        profile = costmodel.BUILTIN_PROFILE
        for algorithm in costmodel.LANE_FAMILIES:
            assert profile.choose_multisource_mode(
                algorithm=algorithm, num_sources=3, num_edges=self.TINY
            ) == "lanes"

    def test_sssp_loops_at_every_width_at_scale(self):
        # the honest fix for the sssp lane regression: the measured
        # marginal per-lane cost exceeds a whole scalar pass
        profile = costmodel.BUILTIN_PROFILE
        assert profile.lanes["sssp"].crossover_sources == float("inf")
        for s in (2, 4, 16, 64, 256):
            assert profile.choose_multisource_mode(
                algorithm="sssp", num_sources=s, num_edges=self.BIG
            ) == "loop"

    def test_bfs_lanes_win_wide_batches_at_scale(self):
        profile = costmodel.BUILTIN_PROFILE
        assert profile.choose_multisource_mode(
            algorithm="bfs", num_sources=2, num_edges=self.BIG
        ) == "loop"
        assert profile.choose_multisource_mode(
            algorithm="bfs", num_sources=16, num_edges=self.BIG
        ) == "lanes"

    def test_pull_threshold_is_clamped(self):
        from dataclasses import replace

        profile = costmodel.BUILTIN_PROFILE
        assert 0.02 <= profile.pull_threshold() <= 0.95
        degenerate = replace(profile, pull_per_edge_s=0.0)
        assert degenerate.pull_threshold() == 0.10
        slow_pull = replace(profile, pull_per_edge_s=1.0)
        assert slow_pull.pull_threshold() == 0.95

    def test_backend_choice_respects_size_and_throughput(self):
        profile = costmodel.BUILTIN_PROFILE
        small = profile.jit_min_edges - 1
        assert profile.choose_kernel_backend(
            edges=small, candidates=("cjit", "numpy")
        ) == "numpy"
        assert profile.choose_kernel_backend(
            edges=self.BIG, candidates=("cjit", "numpy")
        ) == "cjit"
        assert profile.choose_kernel_backend(
            edges=self.BIG, candidates=("numpy",)
        ) == "numpy"
        # a backend calibration never measured is assumed 2x numpy
        assert profile.choose_kernel_backend(
            edges=self.BIG, candidates=("numba", "numpy")
        ) == "numba"
