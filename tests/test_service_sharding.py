"""Sharded serving tier: partition invariants, digest parity, policy.

The tier's one load-bearing promise is that scatter-gather answers are
*bitwise* the single-engine answers — the golden traces replay with
zero digest mismatches at any shard count, on either execution
backend, with shards in-process or remote.  These tests pin that
promise from the bottom up: partition invariants first, per-algorithm
value parity next, then whole-trace replays, the ShardLost fallback
contract, and the routing policy (quotas, priorities, cost-model
placement).  CI's ``sharded-replay`` job re-runs this file and the CLI
replay gate across the full shards x backend matrix.
"""

import socket
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.baselines._run import run_algorithm
from repro.baselines.base import prepare_graph
from repro.engine.push import EngineOptions
from repro.errors import QuotaExhaustedError, ServiceError, ShardLost
from repro.graph.generators import rmat
from repro.multigpu import inedge_owner, inedge_partition
from repro.service import (
    GraphCatalog,
    QueryRequest,
    RoutingPolicy,
    ShardHostServer,
    ShardSet,
    ShardedAnalyticsService,
    TenantQuota,
    parse_host_port,
    parse_priority_arg,
    parse_quota_arg,
    replay_trace,
)
from repro.service.sharding import _PriorityWorkQueue

TRACES = Path(__file__).parent / "traces"
GOLDEN = sorted(p.name for p in TRACES.glob("*.jsonl"))

MONOTONE = ("bfs", "sssp", "sswp", "cc")


@pytest.fixture(scope="module")
def graph():
    return rmat(256, 2048, seed=7, weight_range=(0.5, 2.0))


@pytest.fixture(scope="module")
def shard_host():
    server = ShardHostServer(("127.0.0.1", 0))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server.server_address
    server.shutdown()
    server.server_close()


class TestInedgePartition:
    """Destination ownership: the invariant the reduces lean on."""

    @pytest.mark.parametrize("shards", [1, 2, 3, 4])
    def test_owned_sets_partition_the_nodes(self, graph, shards):
        parts = inedge_partition(graph, shards)
        owned = np.concatenate([p.owned for p in parts])
        assert np.array_equal(np.sort(owned), np.arange(graph.num_nodes))

    @pytest.mark.parametrize("shards", [2, 3, 4])
    def test_every_edge_lands_with_its_destination(self, graph, shards):
        parts = inedge_partition(graph, shards)
        owner = inedge_owner(graph, shards)
        assert sum(p.num_edges for p in parts) == graph.num_edges
        for part in parts:
            dst = part.subgraph.targets
            assert np.all(owner[dst] == part.device)

    @pytest.mark.parametrize("shards", [2, 3])
    def test_slice_preserves_global_edge_order(self, graph, shards):
        """A slice's CSR edge list is the global list, filtered.

        This is what makes sharded PageRank bitwise: each shard's
        ``np.add.at`` walks its edges in exactly the order the
        unsharded kernel would have reached them.
        """
        owner = inedge_owner(graph, shards)
        src_all, dst_all = graph.edge_sources(), graph.targets
        for part in inedge_partition(graph, shards):
            keep = owner[dst_all] == part.device
            assert np.array_equal(part.subgraph.edge_sources(), src_all[keep])
            assert np.array_equal(part.subgraph.targets, dst_all[keep])

    def test_subgraph_keeps_global_node_count(self, graph):
        for part in inedge_partition(graph, 3):
            assert part.subgraph.num_nodes == graph.num_nodes


class TestScatterGatherParity:
    """Sharded answers == single-engine answers, bit for bit."""

    @pytest.mark.parametrize("shards", [2, 3, 4])
    @pytest.mark.parametrize("algorithm", MONOTONE)
    def test_monotone_bitwise(self, graph, algorithm, shards):
        prepared = prepare_graph(graph, algorithm)
        shardset = ShardSet.build(prepared, shards)
        try:
            sources = () if algorithm == "cc" else (0, 5)
            per_source = shardset.run_monotone(algorithm, "none", 0, sources)
            for source in sources or (None,):
                want, _, _ = run_algorithm(
                    prepared, algorithm, source, EngineOptions(), None
                )
                key = -1 if source is None else source
                assert np.array_equal(per_source[key], want)
        finally:
            shardset.close()

    @pytest.mark.parametrize("shards", [2, 4])
    def test_pagerank_bitwise(self, graph, shards):
        prepared = prepare_graph(graph, "pr")
        want, _, _ = run_algorithm(prepared, "pr", None, EngineOptions(), None)
        shardset = ShardSet.build(prepared, shards)
        try:
            assert np.array_equal(shardset.run_pagerank()[-1], want)
        finally:
            shardset.close()

    @pytest.mark.parametrize("kind", ["virtual", "virtual+"])
    def test_virtual_overlay_plans_bitwise(self, graph, kind):
        """Virtual plans run per-shard overlays of the slices.

        The fixpoint is transform-invariant, so the overlay only
        changes the relaxation schedule — values must still match.
        """
        prepared = prepare_graph(graph, "bfs")
        want, _, _ = run_algorithm(prepared, "bfs", 0, EngineOptions(), None)
        shardset = ShardSet.build(prepared, 3)
        try:
            per_source = shardset.run_monotone("bfs", kind, 8, (0,))
            assert np.array_equal(per_source[0], want)
        finally:
            shardset.close()

    def test_overlays_cached_per_shard(self, graph):
        prepared = prepare_graph(graph, "bfs")
        shardset = ShardSet.build(prepared, 2)
        try:
            from repro.service.sharding import ShardRunStats

            cold, warm = ShardRunStats(), ShardRunStats()
            shardset.run_monotone("bfs", "virtual", 8, (0,), stats=cold)
            shardset.run_monotone("bfs", "virtual", 8, (1,), stats=warm)
            assert all(origin == "built" for origin in cold.cache_origins)
            assert all(origin == "memory" for origin in warm.cache_origins)
        finally:
            shardset.close()


class TestGoldenTracesSharded:
    """The acceptance gate: golden traces through the sharded router."""

    @pytest.mark.parametrize("name", GOLDEN)
    @pytest.mark.parametrize("shards", [2, 4])
    def test_replays_digest_clean(self, name, shards):
        service = ShardedAnalyticsService(shards=shards, workers=2)
        try:
            report = replay_trace(str(TRACES / name), service=service)
            summary = service.metrics.summary()
        finally:
            service.close()
        assert report.ok, "\n".join(str(m) for m in report.mismatches)
        assert report.digests_checked == report.requests_submitted
        assert summary["shards"] == shards
        assert summary["sharded_batches"] > 0
        assert summary["shard_supersteps"] > 0
        # every shard pulled its weight on every sharded superstep
        steps = [summary[f"shard{i}_steps"] for i in range(shards)]
        assert len(set(steps)) == 1 and steps[0] > 0

    def test_single_shard_is_the_degraded_mode(self):
        """shards=1 answers everything through the single-engine path."""
        service = ShardedAnalyticsService(shards=1, workers=2)
        try:
            report = replay_trace(str(TRACES / "mixed.jsonl"), service=service)
            summary = service.metrics.summary()
        finally:
            service.close()
        assert report.ok
        assert summary["sharded_batches"] == 0


class TestRouteMisses:
    """What must *not* shard, quietly taking the single-engine path."""

    def test_bc_routes_to_single_engine(self, graph):
        with ShardedAnalyticsService(shards=2, workers=2) as service:
            service.register("g", graph)
            result = service.run(QueryRequest.single("bc", "g", 0))
            assert result.ok
            assert service.metrics.summary()["sharded_batches"] == 0

    def test_transformed_pagerank_routes_to_single_engine(self, graph):
        with ShardedAnalyticsService(shards=2, workers=2) as service:
            service.register("g", graph)
            result = service.run(QueryRequest("pr", "g", transform="virtual"))
            assert result.ok and result.transform == "virtual"
            assert service.metrics.summary()["sharded_batches"] == 0

    def test_planner_errors_survive_sharding(self, graph):
        """pr/udt must fail with the planner's exact message."""
        with ShardedAnalyticsService(shards=2, workers=2) as service:
            service.register("g", graph)
            sharded = service.run(QueryRequest("pr", "g", transform="udt"))
        with ShardedAnalyticsService(shards=1, workers=2) as service:
            service.register("g", graph)
            single = service.run(QueryRequest("pr", "g", transform="udt"))
        assert not sharded.ok and sharded.error == single.error

    def test_auto_route_consults_edge_threshold(self, graph):
        policy = RoutingPolicy(route="auto", min_sharded_edges=10**9)
        with ShardedAnalyticsService(
            shards=2, workers=2, policy=policy
        ) as service:
            service.register("g", graph)
            assert service.run(QueryRequest.single("bfs", "g", 0)).ok
            assert service.metrics.summary()["sharded_batches"] == 0
        policy = RoutingPolicy(route="auto", min_sharded_edges=1)
        with ShardedAnalyticsService(
            shards=2, workers=2, policy=policy
        ) as service:
            service.register("g", graph)
            assert service.run(QueryRequest.single("bfs", "g", 0)).ok
            assert service.metrics.summary()["sharded_batches"] == 1


class TestRemoteShards:
    """The tcp:// shard transport: parity, then the loss contract."""

    def test_remote_parity_and_trace_replay(self, graph, shard_host):
        prepared = prepare_graph(graph, "sssp")
        shardset = ShardSet.build(prepared, 3, remotes=[shard_host])
        try:
            want, _, _ = run_algorithm(
                prepared, "sssp", 0, EngineOptions(), None
            )
            per_source = shardset.run_monotone("sssp", "none", 0, (0,))
            assert np.array_equal(per_source[0], want)
        finally:
            shardset.close()
        service = ShardedAnalyticsService(
            shards=2, workers=2, shard_remotes=[shard_host]
        )
        try:
            report = replay_trace(
                str(TRACES / "mixed.jsonl"), service=service
            )
            assert report.ok, "\n".join(str(m) for m in report.mismatches)
            assert service.metrics.summary()["sharded_batches"] > 0
        finally:
            service.close()

    def _dead_address(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        address = probe.getsockname()
        probe.close()
        return address

    def test_lost_shard_degrades_to_single_engine(self, graph):
        with ShardedAnalyticsService(
            shards=2, workers=2, shard_remotes=[self._dead_address()]
        ) as service:
            service.register("g", graph)
            result = service.run(QueryRequest.single("bfs", "g", 0))
            summary = service.metrics.summary()
        assert result.ok and result.degraded
        assert summary["shard_fallbacks"] == 1

    def test_lost_shard_is_typed_when_fallback_disabled(self, graph):
        with ShardedAnalyticsService(
            shards=2, workers=2,
            shard_remotes=[self._dead_address()], shard_fallback=False,
        ) as service:
            service.register("g", graph)
            result = service.run(QueryRequest.single("bfs", "g", 0))
        assert not result.ok
        assert "lost" in result.error and "unreachable" in result.error

    def test_shard_lost_names_the_shard(self):
        exc = ShardLost("no route to host", shard=1)
        assert "shard" in str(exc) and "no route to host" in str(exc)

    def test_parse_host_port(self):
        assert parse_host_port("10.0.0.1:9000") == ("10.0.0.1", 9000)
        assert parse_host_port("tcp://h:1") == ("h", 1)
        with pytest.raises(ServiceError):
            parse_host_port("no-port")


class TestQuotas:
    """Token buckets at submission, 429 at the HTTP edge."""

    def test_bucket_refills_at_rate(self):
        clock = [0.0]
        policy = RoutingPolicy(
            quotas={"a": TenantQuota(rate=1.0, burst=2.0)},
            clock=lambda: clock[0],
        )
        assert policy.try_admit("a") == 0.0
        assert policy.try_admit("a") == 0.0
        wait = policy.try_admit("a")
        assert wait == pytest.approx(1.0)
        clock[0] = 1.5
        assert policy.try_admit("a") == 0.0
        # unmetered tenants (the default tenant included) always pass
        for _ in range(100):
            assert policy.try_admit("") == 0.0

    def test_admit_raises_typed_with_retry_after(self):
        policy = RoutingPolicy(
            quotas={"a": TenantQuota(rate=2.0, burst=1.0)}, clock=lambda: 0.0
        )
        policy.admit(QueryRequest("pr", "g", tenant="a"))
        with pytest.raises(QuotaExhaustedError) as info:
            policy.admit(QueryRequest("pr", "g", tenant="a"))
        assert info.value.tenant == "a"
        assert info.value.retry_after_s == pytest.approx(0.5)

    def test_service_refuses_over_quota_submissions(self, graph):
        policy = RoutingPolicy(quotas={"a": TenantQuota(rate=0.001, burst=1.0)})
        with ShardedAnalyticsService(
            shards=2, workers=2, policy=policy
        ) as service:
            service.register("g", graph)
            first = QueryRequest.single("bfs", "g", 0, tenant="a")
            assert service.run(first).ok
            with pytest.raises(QuotaExhaustedError):
                service.submit(QueryRequest.single("bfs", "g", 1, tenant="a"))
            assert service.metrics.summary()["quota_rejected"] == 1
            # other tenants are unaffected
            assert service.run(QueryRequest.single("bfs", "g", 2)).ok

    def test_http_maps_quota_to_429(self):
        from repro.service.api.protocol import error_response

        response = error_response(QuotaExhaustedError("a", retry_after_s=3.2))
        assert response.status == 429
        assert response.payload["error"]["type"] == "quota_exhausted"
        assert response.headers["retry-after"] == "4"

    def test_parse_quota_arg(self):
        tenant, quota = parse_quota_arg("alice=2.5:8")
        assert tenant == "alice" and quota == TenantQuota(rate=2.5, burst=8.0)
        assert parse_quota_arg("bob=0.5")[1].burst == 1.0
        for bad in ("alice", "alice=", "=2", "alice=fast"):
            with pytest.raises(ServiceError):
                parse_quota_arg(bad)


class TestPriorities:
    """Priority classes order the backlog; FIFO within a class."""

    def test_parse_priority_arg(self):
        assert parse_priority_arg("a=interactive") == ("a", 0)
        assert parse_priority_arg("b=batch") == ("b", 20)
        assert parse_priority_arg("c=7") == ("c", 7)
        with pytest.raises(ServiceError):
            parse_priority_arg("c=urgent")

    def test_queue_orders_by_priority_then_fifo(self):
        q = _PriorityWorkQueue(0, priority_of=lambda item: item[0])
        q.put((20, "batch-1"))
        q.put((0, "interactive"))
        q.put((20, "batch-2"))
        q.put(None)  # shutdown sentinel drains after real work
        assert q.get() == (0, "interactive")
        assert q.get() == (20, "batch-1")
        assert q.get() == (20, "batch-2")
        assert q.get() is None

    def test_service_serves_interactive_before_batch(self, graph, monkeypatch):
        """With one held dispatcher, queued interactive work overtakes batch."""
        policy = RoutingPolicy(priorities={"vip": 0, "bulk": 20})
        order = []
        gate = threading.Event()
        original = ShardedAnalyticsService._run_batch

        def recording(self, batch, remaining_s):
            tenant = batch.requests[0].tenant
            if tenant == "":
                gate.wait(30)  # hold the dispatcher while others queue
            else:
                order.append(tenant)
            return original(self, batch, remaining_s)

        monkeypatch.setattr(ShardedAnalyticsService, "_run_batch", recording)
        with ShardedAnalyticsService(
            shards=1, workers=1, policy=policy
        ) as service:
            service.register("g", graph)
            blocker = service.submit(QueryRequest.single("bfs", "g", 0))
            bulk = [
                service.submit(
                    QueryRequest.single("bfs", "g", i, tenant="bulk")
                )
                for i in range(1, 4)
            ]
            vip = service.submit(
                QueryRequest.single("bfs", "g", 9, tenant="vip")
            )
            gate.set()
            for ticket in [blocker, vip, *bulk]:
                assert ticket.result(timeout=60).ok
        assert order[0] == "vip"


class TestTenantWire:
    """Tenant tags survive the trace wire; old traces stay identical."""

    def test_tenant_round_trips_through_recorded_trace(self, graph, tmp_path):
        from repro.service import TraceRecorder, load_trace

        path = tmp_path / "t.jsonl"
        recorder = TraceRecorder(str(path), graphs={})
        with ShardedAnalyticsService(
            shards=2, workers=2, recorder=recorder
        ) as service:
            service.register("g", graph)
            assert service.run(
                QueryRequest.single("bfs", "g", 0, tenant="alice")
            ).ok
        recorder.close()
        trace = load_trace(str(path))
        assert trace.requests[0].tenant == "alice"
        assert trace.requests[0].to_query_request().tenant == "alice"

    def test_untenanted_requests_emit_no_tenant_field(self):
        from repro.service.ingest import TraceRequest, format_trace_line

        line = format_trace_line(
            TraceRequest(trace_id=1, algorithm="pr", graph="g")
        )
        assert "tenant" not in line
