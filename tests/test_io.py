"""Unit tests for edge-list and npz I/O."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.builder import from_edge_list
from repro.graph.generators import rmat
from repro.graph.io import load_edge_list, load_npz, save_edge_list, save_npz


class TestEdgeListText:
    def test_roundtrip_unweighted(self, tmp_path):
        g = from_edge_list([(0, 1), (1, 2), (2, 0)])
        path = tmp_path / "g.txt"
        save_edge_list(g, path)
        g2 = load_edge_list(path)
        assert g2 == g

    def test_roundtrip_weighted(self, tmp_path):
        g = rmat(40, 200, seed=2, weight_range=(1, 9))
        path = tmp_path / "g.txt"
        save_edge_list(g, path)
        g2 = load_edge_list(path, num_nodes=g.num_nodes)
        assert np.array_equal(g2.targets, g.targets)
        assert np.allclose(g2.weights, g.weights)

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n% other comment\n0 1\n1 2\n")
        g = load_edge_list(path)
        assert g.num_edges == 2

    def test_header_written(self, tmp_path):
        g = from_edge_list([(0, 1)])
        path = tmp_path / "g.txt"
        save_edge_list(g, path, header="my graph\nline two")
        text = path.read_text()
        assert text.startswith("# my graph\n# line two\n")

    def test_bad_column_count(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphError, match="columns"):
            load_edge_list(path)

    def test_inconsistent_arity(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n0 1 2.0\n")
        with pytest.raises(GraphError, match="inconsistent"):
            load_edge_list(path)

    def test_non_numeric(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphError):
            load_edge_list(path)

    def test_isolated_tail_nodes_via_num_nodes(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        g = load_edge_list(path, num_nodes=7)
        assert g.num_nodes == 7


class TestNpz:
    def test_roundtrip_weighted(self, tmp_path):
        g = rmat(50, 300, seed=4, weight_range=(1, 5))
        path = tmp_path / "g.npz"
        save_npz(g, path)
        assert load_npz(path) == g

    def test_roundtrip_unweighted(self, tmp_path):
        g = rmat(50, 300, seed=4)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        g2 = load_npz(path)
        assert g2 == g
        assert not g2.is_weighted


class TestEdgeCases:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing here\n")
        g = load_edge_list(path)
        assert g.num_nodes == 0 and g.num_edges == 0

    def test_empty_file_with_num_nodes(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        g = load_edge_list(path, num_nodes=4)
        assert g.num_nodes == 4
