"""Tests for the Table 2 method models: correctness, support matrix, OOM."""

import numpy as np
import pytest

from repro.algorithms.reference import (
    reference_bc,
    reference_bfs,
    reference_connected_components,
    reference_pagerank,
    reference_sssp,
    reference_sswp,
)
from repro.baselines import standard_methods
from repro.baselines.base import ALGORITHMS, prepare_graph
from repro.baselines.cusha import CuShaMethod
from repro.baselines.gunrock import GunrockMethod
from repro.baselines.maxwarp import MaxWarpMethod
from repro.baselines.simple import BaselineMethod
from repro.baselines.tigr import TigrUDTMethod, TigrVirtualMethod
from repro.errors import EngineError
from repro.gpu.config import GPUConfig
from repro.graph.builder import to_undirected
from repro.graph.datasets import load_dataset
from repro.graph.generators import rmat


@pytest.fixture(scope="module")
def graph():
    return rmat(300, 3000, seed=21, weight_range=(1, 16))


@pytest.fixture(scope="module")
def source(graph):
    return int(np.argmax(graph.out_degrees()))


ALL_METHODS = standard_methods(k_udt=8, k_v=10)


class TestSupportsMatrix:
    """Table 4's missing cells: who lacks which primitive."""

    def test_mw_and_cusha_lack_bc(self):
        assert not MaxWarpMethod().supports("bc")
        assert not CuShaMethod().supports("bc")

    def test_gunrock_lacks_sswp(self):
        assert not GunrockMethod().supports("sswp")

    def test_tigr_v_supports_everything(self):
        method = TigrVirtualMethod()
        for algorithm in ALGORITHMS:
            assert method.supports(algorithm)

    def test_tigr_udt_skips_pr_and_bc(self):
        method = TigrUDTMethod()
        assert not method.supports("pr")
        assert not method.supports("bc")
        assert method.supports("sssp")

    def test_unsupported_run_raises(self, graph, source):
        with pytest.raises(EngineError, match="does not implement"):
            GunrockMethod().run(graph, "sswp", source)

    def test_unknown_algorithm(self, graph):
        with pytest.raises(EngineError, match="unknown algorithm"):
            BaselineMethod().run(graph, "coloring")

    def test_missing_source(self, graph):
        with pytest.raises(EngineError, match="source"):
            BaselineMethod().run(graph, "sssp")


class TestPrepareGraph:
    def test_bfs_strips_weights(self, graph):
        assert not prepare_graph(graph, "bfs").is_weighted

    def test_cc_symmetrizes(self, graph):
        g = prepare_graph(graph, "cc")
        assert np.array_equal(g.out_degrees(), g.in_degrees())
        assert not g.is_weighted

    def test_sssp_requires_weights(self, graph):
        assert prepare_graph(graph, "sssp").is_weighted
        with pytest.raises(EngineError, match="weighted"):
            prepare_graph(graph.without_weights(), "sssp")


class TestCorrectnessAcrossMethods:
    """Every method computes the same (reference) answers — the
    frameworks differ only in *how fast* the simulator says they are."""

    def test_sssp(self, graph, source):
        ref = reference_sssp(graph, source)
        for method in ALL_METHODS:
            result = method.run(graph, "sssp", source)
            assert not result.oom
            assert np.allclose(result.values, ref), method.name

    def test_bfs(self, graph, source):
        ref = reference_bfs(graph.without_weights(), source)
        for method in ALL_METHODS:
            result = method.run(graph, "bfs", source)
            assert np.allclose(result.values, ref, equal_nan=True), method.name

    def test_sswp(self, graph, source):
        ref = reference_sswp(graph, source)
        for method in ALL_METHODS:
            if not method.supports("sswp"):
                continue
            result = method.run(graph, "sswp", source)
            assert np.allclose(result.values, ref), method.name

    def test_cc(self, graph):
        ref = reference_connected_components(
            to_undirected(graph.without_weights())
        )
        for method in ALL_METHODS:
            result = method.run(graph, "cc")
            assert np.array_equal(result.values.astype(np.int64), ref), method.name

    def test_pr(self, graph):
        ref = reference_pagerank(graph.without_weights(), tolerance=1e-10)
        for method in ALL_METHODS:
            if not method.supports("pr"):
                continue
            result = method.run(graph, "pr")
            assert np.allclose(result.values, ref, atol=1e-6), method.name

    def test_bc(self, graph, source):
        ref = reference_bc(graph.without_weights(), source)
        for method in ALL_METHODS:
            if not method.supports("bc"):
                continue
            result = method.run(graph, "bc", source)
            assert np.allclose(result.values, ref), method.name


class TestMetricsAndNotes:
    def test_metrics_attached(self, graph, source):
        result = BaselineMethod().run(graph, "sssp", source)
        assert result.metrics is not None
        assert result.time_ms == pytest.approx(result.metrics.total_time_ms)

    def test_mw_reports_chosen_warp_size(self, graph, source):
        result = MaxWarpMethod().run(graph, "sssp", source)
        assert result.notes["virtual_warp_size"] in (2, 4, 8, 16, 32)

    def test_transform_time_recorded(self, graph, source):
        result = TigrUDTMethod(degree_bound=8).run(graph, "sssp", source)
        assert result.transform_seconds > 0

    def test_display_time(self, graph, source):
        result = BaselineMethod().run(graph, "sssp", source)
        assert result.display_time != "OOM"


class TestOOM:
    def test_oom_result_instead_of_exception(self, graph, source):
        tiny = GPUConfig(device_memory_bytes=1024)
        result = BaselineMethod().run(graph, "sssp", source, config=tiny)
        assert result.oom
        assert result.values is None
        assert result.display_time == "OOM"
        assert result.time_ms == float("inf")

    def test_table4_oom_pattern(self):
        """The robust Table 4 OOM facts: CuSha OOMs on sinaweibo for
        every primitive; Gunrock OOMs on sinaweibo for BFS but not
        SSSP; Tigr-V+ and MW never OOM on any dataset."""
        config = GPUConfig()
        sina = load_dataset("sinaweibo")
        cusha, gunrock = CuShaMethod(), GunrockMethod()
        for algorithm in ("bfs", "sssp", "cc", "pr"):
            prepared = prepare_graph(sina, algorithm)
            assert cusha.footprint(prepared, algorithm) > config.device_memory_bytes, algorithm
        assert gunrock.footprint(prepare_graph(sina, "bfs"), "bfs") > config.device_memory_bytes
        assert gunrock.footprint(prepare_graph(sina, "sssp"), "sssp") <= config.device_memory_bytes
        for name in ("sinaweibo", "twitter"):
            g = load_dataset(name)
            for method in (TigrVirtualMethod(coalesced=True), MaxWarpMethod()):
                for algorithm in ("bfs", "sssp", "cc", "pr"):
                    prepared = prepare_graph(g, algorithm)
                    assert method.footprint(prepared, algorithm) <= config.device_memory_bytes, (
                        name, method.name, algorithm
                    )

    def test_cusha_weighted_twitter_ooms(self):
        config = GPUConfig()
        twitter = load_dataset("twitter")
        cusha = CuShaMethod()
        assert cusha.footprint(prepare_graph(twitter, "sssp"), "sssp") > config.device_memory_bytes
        assert cusha.footprint(prepare_graph(twitter, "bfs"), "bfs") <= config.device_memory_bytes


class TestFootprintDispatch:
    def test_footprint_bytes_helper(self, graph):
        from repro.baselines.memory import footprint_bytes

        for name in ("baseline", "tigr-udt", "tigr-v", "tigr-v+", "mw", "cusha", "gunrock"):
            assert footprint_bytes(name, graph, "sssp") > 0
        with pytest.raises(KeyError):
            footprint_bytes("ligra", graph, "sssp")

    def test_virtual_footprint_grows_with_smaller_k(self, graph):
        from repro.baselines.memory import tigr_virtual_bytes

        assert tigr_virtual_bytes(graph, "sssp", 2) > tigr_virtual_bytes(graph, "sssp", 32)
