"""Unit tests for the pull-based engine and Theorem 3."""

import numpy as np
import pytest

from repro.algorithms.programs import BFSProgram, SSSPProgram, SSWPProgram
from repro.algorithms.reference import reference_bfs, reference_sssp, reference_sswp
from repro.core.virtual import virtual_transform
from repro.engine.pull import run_pull
from repro.engine.push import EngineOptions
from repro.engine.schedule import NodeScheduler, VirtualScheduler
from repro.errors import EngineError
from repro.graph.builder import from_edge_list
from repro.graph.generators import rmat


class TestPullBasics:
    def test_figure2_pull(self, figure2_graph):
        rev = figure2_graph.reverse()
        result = run_pull(NodeScheduler(rev), SSSPProgram(), figure2_graph, 0)
        assert result.values.tolist() == [0.0, 2.0, 2.0, 3.0]

    def test_mismatched_forward_graph(self, figure2_graph):
        rev = figure2_graph.reverse()
        other = from_edge_list([(0, 1)], num_nodes=2)
        with pytest.raises(EngineError, match="does not match"):
            run_pull(NodeScheduler(rev), BFSProgram(), other, 0)

    def test_weights_required(self, diamond_graph):
        with pytest.raises(EngineError, match="weights"):
            run_pull(NodeScheduler(diamond_graph.reverse()), SSSPProgram(), diamond_graph, 0)

    def test_worklist_off(self, figure2_graph):
        rev = figure2_graph.reverse()
        result = run_pull(NodeScheduler(rev), SSSPProgram(), figure2_graph, 0,
                          options=EngineOptions(worklist=False))
        assert result.values.tolist() == [0.0, 2.0, 2.0, 3.0]

    def test_divergence_guard(self, powerlaw_graph, hub_source):
        with pytest.raises(EngineError, match="pull"):
            run_pull(NodeScheduler(powerlaw_graph.reverse()), SSSPProgram(),
                     powerlaw_graph, hub_source,
                     options=EngineOptions(max_iterations=1))


class TestPushPullEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sssp(self, seed):
        g = rmat(80, 700, seed=seed, weight_range=(1, 9))
        src = int(np.argmax(g.out_degrees()))
        ref = reference_sssp(g, src)
        result = run_pull(NodeScheduler(g.reverse()), SSSPProgram(), g, src)
        assert np.allclose(result.values, ref)

    def test_bfs(self, powerlaw_unweighted, hub_source):
        ref = reference_bfs(powerlaw_unweighted, hub_source)
        result = run_pull(
            NodeScheduler(powerlaw_unweighted.reverse()), BFSProgram(),
            powerlaw_unweighted, hub_source,
        )
        assert np.allclose(result.values, ref, equal_nan=True)


class TestTheorem3:
    """Pull-based virtual transformation requires associativity —
    MIN/MAX reductions qualify, and results must match the original."""

    @pytest.mark.parametrize("k", [1, 4, 10])
    def test_virtual_pull_sssp(self, powerlaw_graph, hub_source, k):
        rev = powerlaw_graph.reverse()
        virtual = virtual_transform(rev, k)
        result = run_pull(
            VirtualScheduler(virtual), SSSPProgram(), powerlaw_graph, hub_source
        )
        assert np.allclose(result.values, reference_sssp(powerlaw_graph, hub_source))

    def test_virtual_pull_sswp(self, powerlaw_graph, hub_source):
        rev = powerlaw_graph.reverse()
        virtual = virtual_transform(rev, 6)
        result = run_pull(
            VirtualScheduler(virtual), SSWPProgram(), powerlaw_graph, hub_source
        )
        assert np.allclose(result.values, reference_sswp(powerlaw_graph, hub_source))

    def test_same_iterations_as_node_pull(self, powerlaw_graph, hub_source):
        """Implicit value sync: virtual pull adds no extra iterations."""
        rev = powerlaw_graph.reverse()
        node = run_pull(NodeScheduler(rev), SSSPProgram(), powerlaw_graph, hub_source)
        virt = run_pull(
            VirtualScheduler(virtual_transform(rev, 4)), SSSPProgram(),
            powerlaw_graph, hub_source,
        )
        assert virt.num_iterations == node.num_iterations
