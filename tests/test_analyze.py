"""Tests for ``repro.analyze``: the static split-safety verifier and
the concurrency/scatter lints.

Two halves:

* the repo's own sources must pass **completely clean** (the CI gate
  runs ``python -m repro analyze --strict``);
* seeded-violation fixtures must each be caught by the *right* rule id
  at the right file:line — the checkers are tested as checkers, not
  just as "something fired".
"""

import json
import textwrap

import pytest

from repro.__main__ import main as cli_main
from repro.analyze import RULES, analyze_paths, default_root
from repro.core.applicability import (
    COMPOSED_ANALYSES,
    PROGRAM_EXPECTATIONS,
    RELAX_CLASS_DUMB_WEIGHT,
    REQUIREMENTS,
)


def write_fixture(tmp_path, name, body):
    path = tmp_path / name
    path.write_text(textwrap.dedent(body))
    return str(path)


def rule_ids(report):
    return [finding.rule_id for finding in report.findings]


def findings_for(report, rule_id):
    return [f for f in report.findings if f.rule_id == rule_id]


# ----------------------------------------------------------------------
# The repo itself
# ----------------------------------------------------------------------
class TestRepoClean:
    def test_no_findings_on_own_sources(self):
        report = analyze_paths()
        assert report.findings == [], report.to_text()
        assert report.files_scanned > 50

    def test_programs_module_alone_is_clean(self):
        """All six analytics verify: five programs plus composed BC."""
        import repro.algorithms.programs as programs_module

        report = analyze_paths([programs_module.__file__])
        assert report.findings == [], report.to_text()

    def test_strict_cli_gate(self, capsys):
        assert cli_main(["analyze", "--strict"]) == 0
        assert "0 error(s)" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Applicability expectations (the table the checker diffs against)
# ----------------------------------------------------------------------
class TestExpectations:
    def test_every_expectation_names_a_table_analysis(self):
        for expectation in PROGRAM_EXPECTATIONS.values():
            assert expectation.analysis in REQUIREMENTS
            assert REQUIREMENTS[expectation.analysis].split_safe

    def test_relax_class_dumb_weights_match_table(self):
        """Theorem 1: the class-derived weight equals the table's."""
        for expectation in PROGRAM_EXPECTATIONS.values():
            assert (
                RELAX_CLASS_DUMB_WEIGHT[expectation.relax_class]
                is expectation.dumb_weight
            )

    def test_composed_analyses_resolve(self):
        for analysis, parts in COMPOSED_ANALYSES.items():
            assert REQUIREMENTS[analysis].split_safe
            for part in parts:
                assert part in PROGRAM_EXPECTATIONS


# ----------------------------------------------------------------------
# Split-safety checker fixtures
# ----------------------------------------------------------------------
PROGRAM_HEADER = """\
    import numpy as np
    from repro.engine.program import PushProgram, ReduceOp

"""


class TestProgramChecker:
    def test_non_commutative_reduce(self, tmp_path):
        path = write_fixture(tmp_path, "bad_reduce.py", PROGRAM_HEADER + """\
    class BadReduce(PushProgram):
        name = "sssp"
        reduce = ReduceOp.SUB

        def relax(self, src_values, edge_weights):
            return src_values + edge_weights
    """)
        report = analyze_paths([path])
        split001 = findings_for(report, "SPLIT001")
        assert len(split001) == 1
        assert split001[0].path == path
        assert "ReduceOp.SUB" in split001[0].message
        # SUB also disagrees with the table's MIN expectation.
        assert findings_for(report, "SPLIT005")

    def test_wrong_dumb_weight(self, tmp_path):
        """An sssp program with a widest-path relax: Theorem 1 says
        +inf, the table says 0 — both the class and weight drift."""
        path = write_fixture(tmp_path, "bad_weight.py", PROGRAM_HEADER + """\
    class WrongMetric(PushProgram):
        name = "sssp"
        reduce = ReduceOp.MIN

        def relax(self, src_values, edge_weights):
            return np.minimum(src_values, edge_weights)
    """)
        report = analyze_paths([path])
        split003 = findings_for(report, "SPLIT003")
        assert len(split003) == 1
        assert "'infinity'" in split003[0].message
        assert "'zero'" in split003[0].message
        # relax line anchors the finding.
        assert split003[0].line == 8

    def test_reduce_drift_from_table(self, tmp_path):
        """SSWP flipped to MIN: relax and weight agree, reduce drifts."""
        path = write_fixture(tmp_path, "drifted_sswp.py", PROGRAM_HEADER + """\
    class DriftedSSWP(PushProgram):
        name = "sswp"
        reduce = ReduceOp.MIN

        def relax(self, src_values, edge_weights):
            return np.minimum(src_values, edge_weights)
    """)
        report = analyze_paths([path])
        ids = rule_ids(report)
        assert "SPLIT005" in ids
        assert "SPLIT002" not in ids and "SPLIT003" not in ids

    def test_lane_safety_drift_double_count(self, tmp_path):
        """An sssp program flipped to ADD: the code implies
        lane_safe=False, the table certifies True — SPLIT006 warns the
        union frontier would double-count."""
        path = write_fixture(tmp_path, "add_sssp.py", PROGRAM_HEADER + """\
    class AddSSSP(PushProgram):
        name = "sssp"
        reduce = ReduceOp.ADD

        def relax(self, src_values, edge_weights):
            return src_values + edge_weights
    """)
        report = analyze_paths([path])
        split006 = findings_for(report, "SPLIT006")
        assert len(split006) == 1
        assert "lane_safe=False" in split006[0].message
        assert "double-count" in split006[0].message

    def test_lane_safety_drift_needless_refusal(self, tmp_path):
        """The mirror drift: a pagerank program with an idempotent
        reduce looks lane-safe, but the table certifies it is not."""
        path = write_fixture(tmp_path, "min_pr.py", PROGRAM_HEADER + """\
    class MinRank(PushProgram):
        name = "pagerank"
        reduce = ReduceOp.MIN

        def relax(self, src_values, edge_weights):
            return src_values.copy()
    """)
        report = analyze_paths([path])
        split006 = findings_for(report, "SPLIT006")
        assert len(split006) == 1
        assert "needlessly refused" in split006[0].message

    def test_unknown_program_name(self, tmp_path):
        path = write_fixture(tmp_path, "unknown.py", PROGRAM_HEADER + """\
    class Mystery(PushProgram):
        name = "fancy"
        reduce = ReduceOp.MIN

        def relax(self, src_values, edge_weights):
            return src_values + edge_weights
    """)
        report = analyze_paths([path])
        assert any(
            f.rule_id == "SPLIT004" and "fancy" in f.message
            for f in report.findings
        )

    def test_unclassifiable_relax(self, tmp_path):
        path = write_fixture(tmp_path, "odd_relax.py", PROGRAM_HEADER + """\
    class OddRelax(PushProgram):
        name = "sssp"
        reduce = ReduceOp.MIN

        def relax(self, src_values, edge_weights):
            return src_values * edge_weights
    """)
        report = analyze_paths([path])
        split002 = findings_for(report, "SPLIT002")
        assert len(split002) == 1
        assert "no known path-metric class" in split002[0].message

    def test_table_side_drift(self, tmp_path):
        """A scan that defines only one program: the table's other
        expectations (and composed analyses) are reported missing."""
        path = write_fixture(tmp_path, "only_bfs.py", PROGRAM_HEADER + """\
    class OnlyBFS(PushProgram):
        name = "bfs"
        reduce = ReduceOp.MIN

        def relax(self, src_values, edge_weights):
            return src_values + edge_weights
    """)
        report = analyze_paths([path])
        missing = findings_for(report, "SPLIT004")
        # sssp, sswp, cc, pagerank expectations have no program here.
        assert len(missing) >= 4
        assert any("'sswp'" in f.message for f in missing)

    def test_split_unsafe_analysis_with_program(self, tmp_path, monkeypatch):
        """A program backing a split-unsafe analytic is drift."""
        from repro.core import applicability as app

        expectation = app.ProgramExpectation(
            "triangles", "triangle_counting", "additive", "min"
        )
        monkeypatch.setitem(
            app.PROGRAM_EXPECTATIONS, "triangles", expectation
        )
        path = write_fixture(tmp_path, "triangles.py", PROGRAM_HEADER + """\
    class Triangles(PushProgram):
        name = "triangles"
        reduce = ReduceOp.MIN

        def relax(self, src_values, edge_weights):
            return src_values + edge_weights
    """)
        report = analyze_paths([path])
        assert any(
            f.rule_id == "SPLIT004" and "split-unsafe" in f.message
            for f in report.findings
        )


# ----------------------------------------------------------------------
# Lock-discipline checker fixtures
# ----------------------------------------------------------------------
class TestLockChecker:
    def test_seeded_violations(self, tmp_path):
        path = write_fixture(tmp_path, "locky.py", """\
    import threading

    class Shared:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0
            self.items = []

        def guarded(self):
            with self._lock:
                self.count = 1
                self.items.append(1)

        def bad_write(self):
            self.count = 2

        def bad_rmw(self):
            self.count += 1

        def bad_mutating_call(self):
            self.items.append(2)

        def bad_read(self):
            return self.count
    """)
        report = analyze_paths([path])
        lock001 = findings_for(report, "LOCK001")
        assert {f.line for f in lock001} == {15, 21}
        lock002 = findings_for(report, "LOCK002")
        assert [f.line for f in lock002] == [18]
        # The mutating call also *reads* its receiver (line 21), so the
        # read warning fires there alongside LOCK001.
        lock003 = findings_for(report, "LOCK003")
        assert sorted(f.line for f in lock003) == [21, 24]
        assert lock003[0].severity == "warning"

    def test_init_and_unguarded_attributes_exempt(self, tmp_path):
        path = write_fixture(tmp_path, "fine.py", """\
    import threading

    class Fine:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0
            self.free = 0

        def guarded(self):
            with self._lock:
                self.count += 1

        def untracked(self):
            # `free` is never lock-guarded, so mutating it is fine.
            self.free += 1
    """)
        report = analyze_paths([path])
        assert report.findings == [], report.to_text()

    def test_nested_with_keeps_guard(self, tmp_path):
        """Regression: a class lock nested inside another context
        manager still guards its body."""
        path = write_fixture(tmp_path, "nested.py", """\
    import threading

    class Nested:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0

        def guarded(self):
            with self._lock:
                self.count += 1

        def nested_guarded(self, other):
            with other:
                with self._lock:
                    self.count += 1
    """)
        report = analyze_paths([path])
        assert report.findings == [], report.to_text()


# ----------------------------------------------------------------------
# Scatter checker fixtures
# ----------------------------------------------------------------------
class TestScatterChecker:
    def test_buffered_scatter_flagged(self, tmp_path):
        path = write_fixture(tmp_path, "scatters.py", """\
    import numpy as np

    def bad(values, cand):
        dst = np.asarray([0, 0, 1])
        values[dst] += cand
        values[dst] = np.minimum(values[dst], cand)
        np.maximum(values, cand, out=values[dst])
    """)
        report = analyze_paths([path])
        scat001 = findings_for(report, "SCAT001")
        assert [f.line for f in scat001] == [5]
        scat002 = findings_for(report, "SCAT002")
        assert sorted(f.line for f in scat002) == [6, 7]

    def test_safe_patterns_quiet(self, tmp_path):
        path = write_fixture(tmp_path, "safe.py", """\
    import numpy as np

    def good(values, cand, graph):
        dst = np.asarray([0, 0, 1])
        np.minimum.at(values, dst, cand)      # sanctioned unbuffered
        for i in range(3):
            values[i] += 1.0                  # scalar loop index
        values[int(dst[0])] += 1.0            # explicit scalar
        mask = values > 0
        values[mask] += 1.0                   # boolean mask: no repeats
        values[1:] += 2.0                     # slice: no repeats
        np.cumsum(values, out=values[1:])     # slice out=
    """)
        report = analyze_paths([path])
        assert report.findings == [], report.to_text()

    def test_csr_attribute_index_flagged(self, tmp_path):
        path = write_fixture(tmp_path, "attr_idx.py", """\
    import numpy as np

    def push(values, graph, cand):
        values[graph.targets] += cand
    """)
        report = analyze_paths([path])
        assert rule_ids(report) == ["SCAT001"]


# ----------------------------------------------------------------------
# Suppression pragmas
# ----------------------------------------------------------------------
class TestSuppression:
    def test_named_suppression(self, tmp_path):
        path = write_fixture(tmp_path, "sup.py", """\
    import numpy as np

    def intentional(values, cand):
        dst = np.asarray([0, 0, 1])
        values[dst] += cand  # analyze: ignore[SCAT001]
    """)
        report = analyze_paths([path])
        assert report.findings == [] and report.suppressed == 1
        unsuppressed = analyze_paths([path], honor_suppressions=False)
        assert rule_ids(unsuppressed) == ["SCAT001"]

    def test_blanket_suppression(self, tmp_path):
        path = write_fixture(tmp_path, "sup_all.py", """\
    import numpy as np

    def intentional(values, cand):
        dst = np.asarray([0, 0, 1])
        values[dst] += cand  # analyze: ignore
    """)
        report = analyze_paths([path])
        assert report.findings == [] and report.suppressed == 1

    def test_other_rule_not_suppressed(self, tmp_path):
        path = write_fixture(tmp_path, "sup_other.py", """\
    import numpy as np

    def intentional(values, cand):
        dst = np.asarray([0, 0, 1])
        values[dst] += cand  # analyze: ignore[LOCK001]
    """)
        report = analyze_paths([path])
        assert rule_ids(report) == ["SCAT001"]


# ----------------------------------------------------------------------
# CLI and report formats
# ----------------------------------------------------------------------
@pytest.fixture
def bad_dir(tmp_path):
    write_fixture(tmp_path, "bad.py", """\
    import numpy as np

    def bad(values, cand):
        dst = np.asarray([0, 0, 1])
        values[dst] += cand
    """)
    return tmp_path


class TestCLI:
    def test_json_output(self, bad_dir, capsys):
        assert cli_main(["analyze", str(bad_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1
        assert payload["counts"] == {"SCAT001": 1}
        finding = payload["findings"][0]
        assert finding["rule"] == "SCAT001"
        assert finding["line"] == 5
        assert finding["path"].endswith("bad.py")

    def test_strict_exit_code(self, bad_dir, capsys):
        assert cli_main(["analyze", str(bad_dir)]) == 0
        assert cli_main(["analyze", str(bad_dir), "--strict"]) == 1
        out = capsys.readouterr().out
        assert "error[SCAT001]" in out

    def test_rule_filter(self, bad_dir, capsys):
        assert cli_main(
            ["analyze", str(bad_dir), "--rule", "LOCK001", "--strict"]
        ) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_unknown_rule_rejected(self, bad_dir, capsys):
        assert cli_main(["analyze", str(bad_dir), "--rule", "NOPE999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_rule_comma_list(self, bad_dir, capsys):
        assert cli_main(
            ["analyze", str(bad_dir), "--rule", "SCAT001,LOCK001", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"SCAT001": 1}

    def test_rule_glob_prefix(self, bad_dir, capsys):
        assert cli_main(
            ["analyze", str(bad_dir), "--rule", "LOCK*", "--strict"]
        ) == 0
        assert "0 error(s)" in capsys.readouterr().out
        assert cli_main(
            ["analyze", str(bad_dir), "--rule", "SCAT*", "--strict"]
        ) == 1

    def test_rule_glob_matching_nothing_rejected(self, bad_dir, capsys):
        assert cli_main(["analyze", str(bad_dir), "--rule", "NOPE*"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_json_reports_wall_time(self, bad_dir, capsys):
        assert cli_main(["analyze", str(bad_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["elapsed_s"] > 0
        assert payload["timings"]["parse_s"] >= 0
        assert any(
            key.startswith("check_") for key in payload["timings"]
        )

    def test_format_json_alias(self, bad_dir, capsys):
        assert cli_main(
            ["analyze", str(bad_dir), "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"SCAT001": 1}

    def test_sarif_output(self, bad_dir, capsys):
        assert cli_main(["analyze", str(bad_dir), "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-2.1.0.json")
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-analyze"
        declared = {rule["id"] for rule in driver["rules"]}
        assert declared == set(RULES)
        (result,) = run["results"]
        assert result["ruleId"] == "SCAT001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("bad.py")
        assert location["region"]["startLine"] == 5
        assert driver["rules"][result["ruleIndex"]]["id"] == "SCAT001"

    def test_human_output_lists_file_line(self, bad_dir, capsys):
        cli_main(["analyze", str(bad_dir)])
        out = capsys.readouterr().out
        assert "bad.py:5: error[SCAT001]" in out


class TestRuleCatalog:
    def test_rules_have_severities_and_rationales(self):
        assert RULES
        for rule in RULES.values():
            assert rule.severity in ("error", "warning")
            assert rule.rationale

    def test_findings_carry_rule_severity(self, bad_dir):
        report = analyze_paths([str(bad_dir)])
        for finding in report.findings:
            assert finding.severity == RULES[finding.rule_id].severity


# ----------------------------------------------------------------------
# Planner integration (satellite: typed split-safety rejection)
# ----------------------------------------------------------------------
class TestPlannerSplitSafety:
    def make_request(self, algorithm, transform="udt"):
        from types import SimpleNamespace

        return SimpleNamespace(
            algorithm=algorithm, transform=transform, degree_bound=None
        )

    def test_split_unsafe_udt_raises_typed_error(self):
        from repro.errors import ServiceError, SplitSafetyError
        from repro.graph.generators import rmat
        from repro.service.planner import plan_query

        graph = rmat(50, 200, seed=0)
        with pytest.raises(SplitSafetyError) as excinfo:
            plan_query(self.make_request("triangle_counting"), graph)
        assert excinfo.value.algorithm == "triangle_counting"
        assert "neighborhoods" in excinfo.value.justification
        # Still a ServiceError for blanket handlers.
        assert isinstance(excinfo.value, ServiceError)

    def test_unclassified_analytic_rejected(self):
        from repro.errors import SplitSafetyError
        from repro.graph.generators import rmat
        from repro.service.planner import plan_query

        graph = rmat(50, 200, seed=0)
        with pytest.raises(SplitSafetyError, match="not classified"):
            plan_query(self.make_request("community_detection"), graph)

    def test_split_safe_udt_still_plans(self):
        from repro.graph.generators import rmat
        from repro.service.planner import plan_query

        graph = rmat(50, 200, seed=0)
        plan = plan_query(self.make_request("sssp"), graph)
        assert plan.transform == "udt"
