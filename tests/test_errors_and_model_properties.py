"""Exception-hierarchy tests and hypothesis properties of the cost model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    DatasetError,
    DeviceOutOfMemoryError,
    EngineError,
    GraphError,
    TigrError,
    TransformError,
)
from repro.gpu.config import GPUConfig, KernelProfile
from repro.gpu.simulator import GPUSimulator
from repro.gpu.warp import WorkTrace, warp_statistics


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc", [GraphError, TransformError, EngineError, DatasetError]
    )
    def test_all_derive_from_tigr_error(self, exc):
        assert issubclass(exc, TigrError)
        with pytest.raises(TigrError):
            raise exc("boom")

    def test_oom_carries_sizes(self):
        err = DeviceOutOfMemoryError(2048, 1024, "test set")
        assert err.required_bytes == 2048
        assert err.available_bytes == 1024
        assert "test set" in str(err)
        assert "2,048" in str(err)

    def test_oom_without_what(self):
        assert "bytes" in str(DeviceOutOfMemoryError(10, 5))

    def test_catchable_as_tigr_error(self):
        with pytest.raises(TigrError):
            raise DeviceOutOfMemoryError(2, 1)


def _trace(counts, starts, strides):
    return WorkTrace(
        np.asarray(counts, dtype=np.int64),
        np.asarray(starts, dtype=np.int64),
        np.asarray(strides, dtype=np.int64),
    )


@st.composite
def traces(draw):
    n = draw(st.integers(min_value=0, max_value=120))
    counts = draw(st.lists(st.integers(0, 50), min_size=n, max_size=n))
    starts = draw(st.lists(st.integers(0, 10_000), min_size=n, max_size=n))
    strides = draw(st.lists(st.integers(1, 16), min_size=n, max_size=n))
    return _trace(counts, starts, strides)


@given(trace=traces())
@settings(max_examples=150, deadline=None)
def test_warp_statistics_invariants(trace):
    """Properties that must hold for any trace whatsoever."""
    stats = warp_statistics(trace)
    # efficiency is a fraction
    assert 0.0 <= stats.warp_efficiency() <= 1.0
    # lane conservation
    assert stats.total_edges == trace.total_edges
    if trace.num_threads:
        assert stats.launched_lanes.sum() == trace.num_threads
    # steps dominate any single lane, never exceed the warp total
    if stats.num_warps:
        assert stats.steps.max(initial=0) <= max(trace.counts.max(initial=0), 0)
        assert (stats.edges <= stats.steps * 32).all()
        assert (stats.gap_bytes >= 8).all()
        assert (stats.gap_bytes <= 128).all()


@given(trace=traces())
@settings(max_examples=100, deadline=None)
def test_simulated_cost_positive_and_finite(trace):
    sim = GPUSimulator()
    metrics = sim.record_iteration(trace)
    assert metrics.cycles >= sim.config.kernel_launch_cycles
    assert np.isfinite(metrics.cycles)
    assert metrics.time_ms >= 0
    assert metrics.instructions >= 0


@given(
    counts=st.lists(st.integers(0, 30), min_size=1, max_size=64),
    extra=st.integers(min_value=1, max_value=40),
)
@settings(max_examples=80, deadline=None)
def test_more_work_never_cheaper(counts, extra):
    """Monotonicity: adding edges to a lane never reduces the cost."""
    starts = np.arange(len(counts), dtype=np.int64) * 100
    strides = np.ones(len(counts), dtype=np.int64)
    base = GPUSimulator().record_iteration(
        _trace(counts, starts, strides)
    ).cycles
    heavier = list(counts)
    heavier[0] += extra
    more = GPUSimulator().record_iteration(
        _trace(heavier, starts, strides)
    ).cycles
    assert more >= base


@given(
    threads=st.integers(min_value=1, max_value=2048),
    count=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_uniform_traces_are_maximally_efficient(threads, count):
    """Uniform work in full warps has efficiency 1; partial final
    warps only lose their empty lanes."""
    stats = warp_statistics(WorkTrace.uniform(threads, count))
    full_warps = threads // 32
    if threads % 32 == 0 and full_warps:
        assert stats.warp_efficiency() == pytest.approx(1.0)
    else:
        expected = threads * count / (stats.total_steps * 32)
        assert stats.warp_efficiency() == pytest.approx(expected)


@given(scale=st.floats(min_value=0.25, max_value=4.0))
@settings(max_examples=30, deadline=None)
def test_clock_scaling_linear(scale):
    """Doubling the clock halves the milliseconds, exactly."""
    cfg = GPUConfig(clock_ghz=1.2 * scale)
    assert cfg.cycles_to_ms(1e6) == pytest.approx(1e6 / (1.2 * scale * 1e9) * 1e3)
