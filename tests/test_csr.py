"""Unit tests for the CSR graph substrate."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.builder import from_edge_list
from repro.graph.csr import CSRGraph


def make_small():
    # 0 -> 1, 0 -> 2, 2 -> 1
    return CSRGraph(
        np.array([0, 2, 2, 3]), np.array([1, 2, 1])
    )


class TestConstruction:
    def test_basic_shape(self):
        g = make_small()
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert not g.is_weighted

    def test_empty_graph(self):
        g = CSRGraph(np.array([0]), np.array([], dtype=np.int64))
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.max_out_degree() == 0

    def test_isolated_nodes(self):
        g = CSRGraph(np.array([0, 0, 0, 0]), np.array([], dtype=np.int64))
        assert g.num_nodes == 3
        assert list(g.out_degrees()) == [0, 0, 0]

    def test_weighted(self):
        g = CSRGraph(np.array([0, 1]), np.array([0]), np.array([2.5]))
        assert g.is_weighted
        assert g.weights[0] == 2.5

    def test_offsets_must_start_at_zero(self):
        with pytest.raises(GraphError, match="offsets\\[0\\]"):
            CSRGraph(np.array([1, 2]), np.array([0]))

    def test_offsets_must_be_monotone(self):
        with pytest.raises(GraphError, match="non-decreasing"):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 0]))

    def test_offsets_must_match_edge_count(self):
        with pytest.raises(GraphError, match="number of edges"):
            CSRGraph(np.array([0, 5]), np.array([0]))

    def test_targets_in_range(self):
        with pytest.raises(GraphError, match="targets"):
            CSRGraph(np.array([0, 1]), np.array([7]))

    def test_negative_target_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([-1]))

    def test_weights_shape_checked(self):
        with pytest.raises(GraphError, match="weights"):
            CSRGraph(np.array([0, 1]), np.array([0]), np.array([1.0, 2.0]))

    def test_arrays_are_frozen(self):
        g = make_small()
        with pytest.raises(ValueError):
            g.targets[0] = 2
        with pytest.raises(ValueError):
            g.offsets[0] = 1


class TestAccessors:
    def test_degrees(self):
        g = make_small()
        assert g.out_degree(0) == 2
        assert g.out_degree(1) == 0
        assert list(g.out_degrees()) == [2, 0, 1]
        assert g.max_out_degree() == 2

    def test_in_degrees(self):
        g = make_small()
        assert list(g.in_degrees()) == [0, 2, 1]

    def test_neighbors(self):
        g = make_small()
        assert list(g.neighbors(0)) == [1, 2]
        assert list(g.neighbors(1)) == []
        assert list(g.neighbors(2)) == [1]

    def test_neighbors_out_of_range(self):
        g = make_small()
        with pytest.raises(GraphError, match="out of range"):
            g.neighbors(3)
        with pytest.raises(GraphError):
            g.out_degree(-1)

    def test_edge_range(self):
        g = make_small()
        assert g.edge_range(0) == (0, 2)
        assert g.edge_range(1) == (2, 2)

    def test_has_edge(self):
        g = make_small()
        assert g.has_edge(0, 1)
        assert g.has_edge(2, 1)
        assert not g.has_edge(1, 0)

    def test_iter_edges(self):
        g = make_small()
        assert list(g.iter_edges()) == [(0, 1), (0, 2), (2, 1)]

    def test_edge_sources(self):
        g = make_small()
        assert list(g.edge_sources()) == [0, 0, 2]

    def test_edge_weights_of(self):
        g = from_edge_list([(0, 1, 5.0), (0, 2, 7.0)])
        assert list(g.edge_weights_of(0)) == [5.0, 7.0]
        unweighted = make_small()
        assert unweighted.edge_weights_of(0) is None


class TestDerivedGraphs:
    def test_reverse_flips_all_edges(self):
        g = make_small()
        r = g.reverse()
        assert sorted(r.iter_edges()) == sorted([(1, 0), (2, 0), (1, 2)])

    def test_reverse_twice_is_identity_as_edge_set(self):
        g = from_edge_list([(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0), (0, 2, 4.0)])
        rr = g.reverse().reverse()
        assert sorted(g.iter_edges()) == sorted(rr.iter_edges())

    def test_reverse_carries_weights(self):
        g = from_edge_list([(0, 1, 5.0), (2, 1, 7.0)])
        r = g.reverse()
        # node 1's out-edges in reverse are the in-edges of 1
        assert sorted(zip(r.neighbors(1), r.edge_weights_of(1))) == [
            (0, 5.0), (2, 7.0)
        ]

    def test_with_weights(self):
        g = make_small()
        w = g.with_weights([1.0, 2.0, 3.0])
        assert w.is_weighted
        assert list(w.weights) == [1.0, 2.0, 3.0]
        # original untouched
        assert not g.is_weighted

    def test_with_weights_bad_shape(self):
        with pytest.raises(GraphError):
            make_small().with_weights([1.0])

    def test_without_weights(self):
        g = from_edge_list([(0, 1, 5.0)])
        assert not g.without_weights().is_weighted

    def test_to_coo_roundtrip(self):
        g = from_edge_list([(0, 1, 5.0), (1, 2, 6.0), (0, 2, 7.0)])
        src, dst, w = g.to_coo()
        from repro.graph.builder import from_arrays

        g2 = from_arrays(src, dst, w, num_nodes=g.num_nodes)
        assert g2 == g


class TestValueSemantics:
    def test_equality(self):
        assert make_small() == make_small()

    def test_inequality_weights(self):
        g = make_small()
        assert g != g.with_weights([1.0, 1.0, 1.0])

    def test_inequality_structure(self):
        g1 = from_edge_list([(0, 1)])
        g2 = from_edge_list([(1, 0)])
        assert g1 != g2

    def test_eq_not_implemented_for_other_types(self):
        assert make_small().__eq__(42) is NotImplemented

    def test_repr(self):
        assert "num_nodes=3" in repr(make_small())
        assert "unweighted" in repr(make_small())

    def test_nbytes_counts_all_arrays(self):
        g = make_small()
        assert g.nbytes() == g.offsets.nbytes + g.targets.nbytes
        gw = g.with_weights([1.0, 1.0, 1.0])
        assert gw.nbytes() == g.nbytes() + gw.weights.nbytes


class TestFingerprint:
    """Content-based identity for the serving layer's artifact cache."""

    def test_deterministic_across_objects(self):
        a = from_edge_list([(0, 1), (1, 2), (2, 0)])
        b = from_edge_list([(0, 1), (1, 2), (2, 0)])
        assert a is not b
        assert a.fingerprint() == b.fingerprint()

    def test_cached_on_instance(self):
        g = make_small()
        assert g.fingerprint() is g.fingerprint()

    def test_is_hex_sha256(self):
        fp = make_small().fingerprint()
        assert len(fp) == 64
        int(fp, 16)  # parses as hex

    def test_structure_changes_fingerprint(self):
        g1 = from_edge_list([(0, 1)])
        g2 = from_edge_list([(1, 0)])
        assert g1.fingerprint() != g2.fingerprint()

    def test_weights_change_fingerprint(self):
        g = make_small()
        assert g.fingerprint() != g.with_weights([1.0, 1.0, 1.0]).fingerprint()
        assert (
            g.with_weights([1.0, 1.0, 1.0]).fingerprint()
            != g.with_weights([2.0, 1.0, 1.0]).fingerprint()
        )

    def test_stable_across_sessions(self):
        # pinned digest: a change here invalidates every spilled artifact,
        # which must be a deliberate (versioned) decision.
        g = CSRGraph(np.array([0, 1]), np.array([0]))
        assert g.fingerprint() == (
            "620de7d3631d056c36bccaa63d7f736c"
            "a3b8b8f92a27b1542758189520a4e3d4"
        )

    def test_empty_vs_single_node(self):
        empty = CSRGraph(np.array([0]), np.array([], dtype=np.int64))
        single = CSRGraph(np.array([0, 0]), np.array([], dtype=np.int64))
        assert empty.fingerprint() != single.fingerprint()
