"""Structure tests for the extension experiments (tiny scales).

The ``benchmarks/`` wrappers assert the full-scale shapes; these
verify the experiment *functions* themselves — row schemas, internal
consistency, determinism — quickly enough to live in the unit suite.
"""

import pytest

from repro.bench.ablations import push_vs_pull
from repro.bench.hardwired import hardwired_comparison
from repro.bench.orthogonality import device_generation_sweep, multigpu_orthogonality
from repro.bench.scaling import speedup_scaling, transform_scaling
from repro.bench.sweeps import reordering_comparison, skew_sweep
from repro.bench.tables import table4_performance

SCALE = 0.2


class TestHardwiredComparison:
    def test_row_schema(self):
        report = hardwired_comparison(datasets=("pokec",), scale=SCALE)
        assert len(report.rows) == 4  # one per primitive
        for row in report.rows:
            assert row["hardwired_ms"] > 0
            assert row["tigr_ms"] > 0
            assert row["tigr_over_hardwired"] == pytest.approx(
                row["tigr_ms"] / row["hardwired_ms"]
            )

    def test_deterministic(self):
        a = hardwired_comparison(datasets=("pokec",), scale=SCALE)
        b = hardwired_comparison(datasets=("pokec",), scale=SCALE)
        assert a.rows == b.rows


class TestOrthogonality:
    def test_multigpu_rows(self):
        report = multigpu_orthogonality(dataset="pokec", scale=SCALE)
        devices = [r["devices"] for r in report.rows]
        assert devices == [1, 2, 4]
        assert report.rows[0]["transfer_bytes"] == 0

    def test_device_sweep_rows(self):
        report = device_generation_sweep(dataset="pokec", scale=SCALE)
        names = [r["device"] for r in report.rows]
        assert names == ["p4000-class", "v100-class", "a100-class"]
        for row in report.rows:
            assert row["speedup"] > 0


class TestScaling:
    def test_transform_scaling_slopes_present(self):
        report = transform_scaling(dataset="pokec", scales=(0.2, 0.4), repeats=1)
        assert "physical_slope" in report.extras
        assert "virtual_slope" in report.extras
        assert report.rows[0]["edges"] < report.rows[1]["edges"]

    def test_speedup_scaling_rows(self):
        report = speedup_scaling(dataset="pokec", scales=(0.2, 0.4))
        for row in report.rows:
            assert row["speedup"] == pytest.approx(
                row["baseline_ms"] / row["tigr_ms"]
            )


class TestSweeps:
    def test_skew_sweep_has_control_row(self):
        report = skew_sweep(num_nodes=800, target_edges=6000,
                            max_degrees=(16, 256), seed=1)
        labels = [r["graph"] for r in report.rows]
        assert labels[-1] == "regular ring"
        assert report.rows[-1]["speedup"] == pytest.approx(1.0, abs=0.05)

    def test_reordering_configs(self):
        report = reordering_comparison(dataset="pokec", scale=SCALE)
        configs = {r["config"] for r in report.rows}
        assert {"original ids", "degree-sorted", "bfs-ordered",
                "tigr-v+ (original)", "tigr-v+ (degree-sorted)"} == configs


class TestDirectionAblation:
    def test_push_pull_rows(self):
        report = push_vs_pull(dataset="pokec", scale=SCALE)
        engines = {r["engine"] for r in report.rows}
        assert engines == {"push", "pull", "adaptive", "tigr-v+ push"}
        iters = {r["iterations"] for r in report.rows}
        assert len(iters) == 1  # direction never changes BSP depth


class TestExtendedTable4:
    def test_extended_columns(self):
        report = table4_performance(
            algorithms=("sssp",), datasets=("pokec",), scale=SCALE, extended=True
        )
        row = report.rows[0]
        for column in ("baseline", "tigr-udt", "tigr-v", "tigr-v+",
                       "delta-sssp", "ecl-cc"):
            assert column in row
        assert row["ecl-cc"] == "-"  # wrong algorithm for that primitive
        assert "(extended)" in report.experiment
