"""Tests for Matrix Market and METIS interop."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.builder import from_edge_list, to_undirected
from repro.graph.formats import load_metis, load_mtx, save_metis, save_mtx
from repro.graph.generators import rmat


class TestMatrixMarket:
    def test_roundtrip_weighted(self, tmp_path):
        g = rmat(40, 250, seed=8, weight_range=(1, 9))
        path = tmp_path / "g.mtx"
        save_mtx(g, path, comment="test graph")
        g2 = load_mtx(path)
        assert g2 == g

    def test_roundtrip_pattern(self, tmp_path):
        g = rmat(40, 250, seed=8)
        path = tmp_path / "g.mtx"
        save_mtx(g, path)
        g2 = load_mtx(path)
        assert not g2.is_weighted
        assert g2 == g

    def test_symmetric_expansion(self, tmp_path):
        path = tmp_path / "sym.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 2\n"
            "2 1\n"
            "3 3\n"
        )
        g = load_mtx(path)
        assert g.has_edge(1, 0) and g.has_edge(0, 1)
        assert g.has_edge(2, 2)  # diagonal once
        assert g.num_edges == 3

    def test_one_indexed(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate integer general\n"
            "% a comment\n"
            "2 2 1\n"
            "1 2 5\n"
        )
        g = load_mtx(path)
        assert g.has_edge(0, 1)
        assert g.weights[0] == 5.0

    def test_rectangular_uses_max_dimension(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 5 1\n"
            "1 5\n"
        )
        assert load_mtx(path).num_nodes == 5

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("1 1 0\n")
        with pytest.raises(GraphError, match="header"):
            load_mtx(path)

    def test_dense_array_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
        with pytest.raises(GraphError, match="coordinate"):
            load_mtx(path)

    def test_complex_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix coordinate complex general\n1 1 0\n")
        with pytest.raises(GraphError, match="value type"):
            load_mtx(path)

    def test_out_of_bounds_entry(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n9 1\n"
        )
        with pytest.raises(GraphError, match="out of bounds"):
            load_mtx(path)


class TestMetis:
    def test_roundtrip_unweighted(self, tmp_path):
        g = to_undirected(rmat(30, 150, seed=9))
        path = tmp_path / "g.graph"
        save_metis(g, path)
        g2 = load_metis(path)
        assert sorted(g2.iter_edges()) == sorted(
            (a, b) for a, b in g.iter_edges() if a != b
        )

    def test_roundtrip_weighted(self, tmp_path):
        g = to_undirected(rmat(30, 150, seed=9, weight_range=(1, 5)))
        path = tmp_path / "g.graph"
        save_metis(g, path)
        g2 = load_metis(path)
        assert g2.is_weighted
        assert g2.num_nodes == g.num_nodes

    def test_known_file(self, tmp_path):
        # the classic METIS example: a 4-node path, 3 undirected edges
        path = tmp_path / "p.graph"
        path.write_text("4 3\n2\n1 3\n2 4\n3\n")
        g = load_metis(path)
        assert g.num_nodes == 4
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.has_edge(2, 3)

    def test_directed_graph_rejected_on_save(self, tmp_path):
        g = from_edge_list([(0, 1)])
        with pytest.raises(GraphError, match="undirected"):
            save_metis(g, tmp_path / "bad.graph")

    def test_header_mismatch(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("3 1\n2\n1\n")  # declares 3 nodes, lists 2
        with pytest.raises(GraphError, match="lines"):
            load_metis(path)

    def test_comment_lines_skipped(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("% header comment\n2 1\n2\n1\n")
        assert load_metis(path).num_edges == 2

    def test_neighbor_out_of_range(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("2 1\n5\n\n")
        with pytest.raises(GraphError):
            load_metis(path)

    def test_self_loops_dropped_on_save(self, tmp_path):
        g = from_edge_list([(0, 0), (0, 1), (1, 0)])
        path = tmp_path / "g.graph"
        save_metis(g, path)
        g2 = load_metis(path)
        assert not g2.has_edge(0, 0)

    def test_cross_format_consistency(self, tmp_path):
        """SNAP edge list, npz, mtx and METIS all reload to the same
        undirected graph."""
        from repro.graph.io import load_edge_list, load_npz, save_edge_list, save_npz

        g = to_undirected(rmat(25, 120, seed=10))
        mtx, npz, txt, metis = (tmp_path / n for n in
                                ("g.mtx", "g.npz", "g.txt", "g.graph"))
        save_mtx(g, mtx)
        save_npz(g, npz)
        save_edge_list(g, txt)
        save_metis(g, metis)
        base = sorted((a, b) for a, b in g.iter_edges() if a != b)
        for loaded in (load_mtx(mtx), load_npz(npz), load_edge_list(txt)):
            assert sorted((a, b) for a, b in loaded.iter_edges() if a != b) == base
        assert sorted(load_metis(metis).iter_edges()) == base
