"""Unit tests for the push-based BSP engine."""

import numpy as np
import pytest

from repro.algorithms.programs import BFSProgram, CCProgram, SSSPProgram
from repro.engine.program import ReduceOp
from repro.engine.push import EngineOptions, run_push
from repro.engine.schedule import NodeScheduler
from repro.errors import EngineError
from repro.gpu.simulator import GPUSimulator
from repro.graph.builder import from_edge_list


class TestReduceOp:
    def test_min_scatter_with_duplicates(self):
        values = np.array([9.0, 9.0])
        ReduceOp.MIN.scatter(values, np.array([0, 0, 1]), np.array([5.0, 3.0, 7.0]))
        assert values.tolist() == [3.0, 7.0]

    def test_max_scatter(self):
        values = np.array([0.0])
        ReduceOp.MAX.scatter(values, np.array([0, 0]), np.array([2.0, 5.0]))
        assert values[0] == 5.0

    def test_add_scatter(self):
        values = np.array([1.0])
        ReduceOp.ADD.scatter(values, np.array([0, 0]), np.array([2.0, 3.0]))
        assert values[0] == 6.0

    def test_identities(self):
        assert ReduceOp.MIN.identity == np.inf
        assert ReduceOp.MAX.identity == -np.inf
        assert ReduceOp.ADD.identity == 0.0


class TestEngineLoop:
    def test_figure2_distances(self, figure2_graph):
        """The paper's running SSSP example converges to [0, 2, 2, 3]."""
        result = run_push(NodeScheduler(figure2_graph), SSSPProgram(), 0)
        assert result.values.tolist() == [0.0, 2.0, 2.0, 3.0]
        assert result.converged

    def test_unreachable_nodes_stay_at_identity(self):
        g = from_edge_list([(0, 1, 1.0)], num_nodes=3)
        result = run_push(NodeScheduler(g), SSSPProgram(), 0)
        assert result.values[2] == np.inf

    def test_worklist_and_full_sweep_agree(self, powerlaw_graph, hub_source):
        with_wl = run_push(NodeScheduler(powerlaw_graph), SSSPProgram(), hub_source,
                           options=EngineOptions(worklist=True))
        without = run_push(NodeScheduler(powerlaw_graph), SSSPProgram(), hub_source,
                           options=EngineOptions(worklist=False))
        assert np.allclose(with_wl.values, without.values)

    def test_worklist_processes_fewer_edges(self, powerlaw_graph, hub_source):
        with_wl = run_push(NodeScheduler(powerlaw_graph), SSSPProgram(), hub_source,
                           options=EngineOptions(worklist=True))
        without = run_push(NodeScheduler(powerlaw_graph), SSSPProgram(), hub_source,
                           options=EngineOptions(worklist=False))
        assert with_wl.edges_processed < without.edges_processed

    def test_sync_relaxation_same_fixed_point(self, powerlaw_graph, hub_source):
        strict = run_push(NodeScheduler(powerlaw_graph), SSSPProgram(), hub_source)
        for blocks in (2, 4, 16):
            relaxed = run_push(
                NodeScheduler(powerlaw_graph), SSSPProgram(), hub_source,
                options=EngineOptions(sync_relaxation_blocks=blocks),
            )
            assert np.allclose(strict.values, relaxed.values)
            assert relaxed.num_iterations <= strict.num_iterations

    def test_bad_relaxation_blocks(self, figure2_graph):
        with pytest.raises(EngineError):
            run_push(NodeScheduler(figure2_graph), SSSPProgram(), 0,
                     options=EngineOptions(sync_relaxation_blocks=0))

    def test_weights_required(self, diamond_graph):
        with pytest.raises(EngineError, match="weights"):
            run_push(NodeScheduler(diamond_graph), SSSPProgram(), 0)

    def test_max_iterations_enforced(self, powerlaw_graph, hub_source):
        with pytest.raises(EngineError, match="converge"):
            run_push(NodeScheduler(powerlaw_graph), SSSPProgram(), hub_source,
                     options=EngineOptions(max_iterations=1))

    def test_max_iterations_tolerated_when_not_required(self, powerlaw_graph, hub_source):
        result = run_push(NodeScheduler(powerlaw_graph), SSSPProgram(), hub_source,
                          options=EngineOptions(max_iterations=1, require_convergence=False))
        assert not result.converged
        assert result.num_iterations == 1

    def test_source_with_no_edges_converges_immediately(self):
        g = from_edge_list([(0, 1, 1.0)], num_nodes=3)
        result = run_push(NodeScheduler(g), SSSPProgram(), 2)
        assert result.converged
        assert result.values[2] == 0.0

    def test_simulator_attached(self, figure2_graph):
        sim = GPUSimulator()
        result = run_push(NodeScheduler(figure2_graph), SSSPProgram(), 0, simulator=sim)
        assert result.metrics is not None
        assert result.metrics.num_iterations == result.num_iterations
        assert result.metrics.total_time_ms > 0

    def test_cc_all_nodes_initial_frontier(self, powerlaw_symmetric):
        result = run_push(NodeScheduler(powerlaw_symmetric), CCProgram(), None)
        assert result.converged
        labels = result.values.astype(np.int64)
        # labels are component minima: every label maps to itself
        assert np.array_equal(labels[labels], labels)

    def test_bfs_on_unweighted(self, diamond_graph):
        result = run_push(NodeScheduler(diamond_graph), BFSProgram(), 0)
        assert result.values.tolist() == [0.0, 1.0, 1.0, 2.0]

    def test_source_required(self, diamond_graph):
        with pytest.raises(EngineError, match="source"):
            run_push(NodeScheduler(diamond_graph), BFSProgram(), None)
