"""Unit + property tests for on-the-fly mapping reasoning (§4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamic import DynamicMapper
from repro.errors import TransformError
from repro.graph.builder import from_edge_list
from repro.graph.generators import rmat


class TestDynamicMapper:
    def test_bad_bound(self, powerlaw_graph):
        with pytest.raises(TransformError):
            DynamicMapper(powerlaw_graph, 0)

    def test_zero_extra_memory(self, powerlaw_graph):
        assert DynamicMapper(powerlaw_graph, 4).extra_memory_words() == 0

    def test_num_virtual_nodes_matches_stored(self, powerlaw_graph):
        mapper = DynamicMapper(powerlaw_graph, 4)
        assert mapper.num_virtual_nodes() == mapper.materialize().num_virtual_nodes

    def test_figure10_reasoning(self):
        """§4.1: node of degree 6, K=3 -> split into ceil(6/3)=2."""
        g = from_edge_list([(0, t) for t in range(1, 7)])
        mapper = DynamicMapper(g, 3)
        assert mapper.num_virtual_nodes() == 2
        assert mapper.physical_of(0) == 0
        assert mapper.physical_of(1) == 0
        assert mapper.edge_slots(0).tolist() == [0, 1, 2]
        assert mapper.edge_slots(1).tolist() == [3, 4, 5]

    def test_out_of_range_virtual_id(self, powerlaw_graph):
        mapper = DynamicMapper(powerlaw_graph, 4)
        with pytest.raises(TransformError, match="out of range"):
            mapper.resolve(np.array([mapper.num_virtual_nodes()]))
        with pytest.raises(TransformError):
            mapper.resolve(np.array([-1]))

    def test_resolve_batch(self, powerlaw_graph):
        mapper = DynamicMapper(powerlaw_graph, 4)
        total = mapper.num_virtual_nodes()
        physical, starts, counts = mapper.resolve(np.arange(total))
        assert counts.max() <= 4
        assert counts.min() >= 1
        assert counts.sum() == powerlaw_graph.num_edges
        # physical ids non-decreasing when virtual ids are sequential
        assert np.all(np.diff(physical) >= 0)


@given(
    seed=st.integers(min_value=0, max_value=40),
    k=st.integers(min_value=1, max_value=11),
)
@settings(max_examples=60, deadline=None)
def test_dynamic_equals_stored_virtual_node_array(seed, k):
    """Property (§4.1): the two virtualization designs — stored array
    and on-the-fly reasoning — define the identical mapping."""
    graph = rmat(50, 500, seed=seed)
    mapper = DynamicMapper(graph, k)
    stored = mapper.materialize()
    total = mapper.num_virtual_nodes()
    assert total == stored.num_virtual_nodes
    physical, starts, counts = mapper.resolve(np.arange(total))
    assert np.array_equal(physical, stored.physical_ids)
    s2, c2, strides = stored.edge_layout()
    assert np.array_equal(starts, s2)
    assert np.array_equal(counts, c2)
    assert np.all(strides == 1)
