"""Unit tests for the sparse/dense frontier representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.frontier import DENSE_THRESHOLD, Frontier
from repro.errors import EngineError


class TestConstruction:
    def test_requires_exactly_one_representation(self):
        with pytest.raises(EngineError):
            Frontier(10)
        with pytest.raises(EngineError):
            Frontier(10, ids=np.array([1]), mask=np.zeros(10, dtype=bool))

    def test_ids_out_of_range(self):
        with pytest.raises(EngineError, match="range"):
            Frontier.from_ids(5, [7])
        with pytest.raises(EngineError):
            Frontier.from_ids(5, [-1])

    def test_mask_shape_checked(self):
        with pytest.raises(EngineError, match="shape"):
            Frontier.from_mask(5, np.zeros(4, dtype=bool))

    def test_bad_threshold(self):
        with pytest.raises(EngineError, match="threshold"):
            Frontier.from_ids(5, [0], dense_threshold=0.0)

    def test_duplicates_collapsed(self):
        f = Frontier.from_ids(100, [3, 3, 5, 3])
        assert f.size == 2
        assert f.ids().tolist() == [3, 5]

    def test_empty_and_all(self):
        assert Frontier.empty(10).size == 0
        assert not Frontier.empty(10)
        full = Frontier.all_nodes(10)
        assert full.size == 10
        assert full.is_dense

    def test_zero_node_graph(self):
        f = Frontier.from_mask(0, np.zeros(0, dtype=bool))
        assert f.size == 0
        assert not f.is_dense


class TestSwitching:
    def test_small_set_stays_sparse(self):
        f = Frontier.from_ids(1000, [1, 2, 3])
        assert not f.is_dense

    def test_large_set_goes_dense(self):
        f = Frontier.from_ids(100, list(range(50)))
        assert f.is_dense

    def test_sparse_mask_input_switches_to_ids(self):
        mask = np.zeros(1000, dtype=bool)
        mask[7] = True
        f = Frontier.from_mask(1000, mask)
        assert not f.is_dense
        assert f.ids().tolist() == [7]

    def test_threshold_respected(self):
        ids = list(range(10))  # 10% occupancy
        loose = Frontier.from_ids(100, ids, dense_threshold=0.5)
        tight = Frontier.from_ids(100, ids, dense_threshold=0.05)
        assert not loose.is_dense
        assert tight.is_dense

    def test_representation_does_not_change_ids(self):
        ids = [0, 10, 20, 30, 40]
        sparse = Frontier.from_ids(1000, ids)
        dense = Frontier.from_ids(50, ids)
        assert sparse.ids().tolist() == dense.ids().tolist() == ids


class TestQueries:
    def test_mask_roundtrip(self):
        f = Frontier.from_ids(10, [2, 4])
        assert f.mask().tolist() == [
            False, False, True, False, True, False, False, False, False, False
        ]

    def test_contains(self):
        f = Frontier.from_ids(10, [2, 4])
        assert f.contains(2) and not f.contains(3)
        dense = Frontier.all_nodes(10)
        assert dense.contains(9)

    def test_len_and_bool(self):
        f = Frontier.from_ids(10, [1])
        assert len(f) == 1 and bool(f)

    def test_repr(self):
        assert "sparse" in repr(Frontier.from_ids(100, [1]))
        assert "dense" in repr(Frontier.all_nodes(4))


class TestUnion:
    def test_sparse_union(self):
        a = Frontier.from_ids(100, [1, 2])
        b = Frontier.from_ids(100, [2, 3])
        assert a.union(b).ids().tolist() == [1, 2, 3]

    def test_mixed_union(self):
        a = Frontier.from_ids(10, [1])
        b = Frontier.all_nodes(10)
        assert a.union(b).size == 10

    def test_size_mismatch(self):
        with pytest.raises(EngineError):
            Frontier.from_ids(10, [1]).union(Frontier.from_ids(20, [1]))


class TestEngineIntegration:
    def test_bfs_reports_dense_iterations(self, powerlaw_symmetric, hub_source):
        """Power-law BFS frontiers explode after one hop: the middle
        levels should run dense."""
        from repro.algorithms import bfs

        result = bfs(powerlaw_symmetric, hub_source)
        assert result.dense_iterations >= 1
        assert result.dense_iterations <= result.num_iterations

    def test_threshold_one_never_dense(self, powerlaw_symmetric, hub_source):
        from repro.algorithms import bfs
        from repro.engine.push import EngineOptions

        result = bfs(powerlaw_symmetric, hub_source,
                     options=EngineOptions(dense_threshold=1.0))
        assert result.dense_iterations <= 1  # only a truly full frontier

    def test_results_independent_of_threshold(self, powerlaw_graph, hub_source):
        from repro.algorithms import sssp
        from repro.engine.push import EngineOptions

        a = sssp(powerlaw_graph, hub_source,
                 options=EngineOptions(dense_threshold=0.001))
        b = sssp(powerlaw_graph, hub_source,
                 options=EngineOptions(dense_threshold=1.0))
        assert np.allclose(a.values, b.values)
        assert a.num_iterations == b.num_iterations


@given(
    ids=st.lists(st.integers(min_value=0, max_value=99), max_size=80),
    threshold=st.floats(min_value=0.01, max_value=1.0),
)
@settings(max_examples=100, deadline=None)
def test_frontier_representation_invariant(ids, threshold):
    """Property: ids()/mask()/size agree regardless of representation."""
    f = Frontier.from_ids(100, ids, dense_threshold=threshold)
    unique = sorted(set(ids))
    assert f.ids().tolist() == unique
    assert f.size == len(unique)
    assert np.flatnonzero(f.mask()).tolist() == unique
