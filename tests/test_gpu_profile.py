"""Tests for the run-profiling helpers."""

import numpy as np

from repro.algorithms import sssp
from repro.core.virtual import virtual_transform
from repro.gpu.profile import (
    bottleneck_report,
    compare_runs,
    iteration_rows,
    profile_text,
)
from repro.gpu.simulator import GPUSimulator


def profiled_run(target, source):
    sim = GPUSimulator()
    result = sssp(target, source, simulator=sim)
    return result


class TestProfileHelpers:
    def test_iteration_rows_shape(self, powerlaw_graph, hub_source):
        result = profiled_run(powerlaw_graph, hub_source)
        rows = iteration_rows(result.metrics)
        assert len(rows) == result.num_iterations
        assert all(r["time_ms"] > 0 for r in rows)
        assert sum(r["edges"] for r in rows) == result.edges_processed

    def test_profile_text(self, powerlaw_graph, hub_source):
        result = profiled_run(powerlaw_graph, hub_source)
        text = profile_text(result.metrics, title="sssp profile")
        assert "sssp profile" in text
        assert "totals:" in text
        assert "warp efficiency" in text

    def test_compare_runs(self, powerlaw_graph, hub_source):
        base = profiled_run(powerlaw_graph, hub_source)
        tigr = profiled_run(
            virtual_transform(powerlaw_graph, 8, coalesced=True), hub_source
        )
        text = compare_runs({"baseline": base.metrics, "tigr-v+": tigr.metrics})
        assert "baseline" in text and "tigr-v+" in text

    def test_bottleneck_report(self, powerlaw_graph, hub_source):
        result = profiled_run(powerlaw_graph, hub_source)
        report = bottleneck_report(result.metrics)
        np.testing.assert_allclose(
            report["compute_fraction"] + report["memory_fraction"], 1.0
        )
        assert report["simd_steps"] > 0
        assert report["value_transactions"] > 0
