"""Seeded ASYNC003: a coroutine call whose result is discarded."""

import asyncio


async def audit(event: str) -> None:
    await asyncio.sleep(0)


async def handle(event: str) -> int:
    audit(event)
    return 1
