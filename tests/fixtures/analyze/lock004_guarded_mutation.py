"""Seeded LOCK004: ServiceMetrics state mutated from outside the
class, bypassing its lock-guarded methods."""

import threading


class ServiceMetrics:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.http_requests = 0

    def http_observed(self) -> None:
        with self._lock:
            self.http_requests += 1


def record(metrics: ServiceMetrics) -> None:
    metrics.http_requests += 1
