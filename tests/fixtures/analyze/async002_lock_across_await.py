"""Seeded ASYNC002: a ``threading`` lock held across an ``await``."""

import asyncio
import threading


async def fetch(key):
    await asyncio.sleep(0)
    return key


class Cache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values = {}

    async def refresh(self, key):
        with self._lock:
            self._values[key] = await fetch(key)
