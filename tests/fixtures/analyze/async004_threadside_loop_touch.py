"""Seeded ASYNC004: loop-affine asyncio objects touched from
thread-side code without ``call_soon_threadsafe``."""

import asyncio


def finish(future: asyncio.Future, value) -> None:
    future.set_result(value)


def feed(inbox: asyncio.Queue, item) -> None:
    inbox.put_nowait(item)
