"""Seeded ASYNC001: blocking calls reachable from an ``async def``.

``handler`` blocks directly (``time.sleep``) and transitively
(``relay`` -> ``Worker.push`` -> ``queue.Queue.put``); both sites
must be flagged.
"""

import queue
import time


class Worker:
    def __init__(self) -> None:
        self._queue = queue.Queue(maxsize=4)

    def push(self, item) -> None:
        self._queue.put(item, timeout=1.0)


def relay(worker: Worker, item) -> None:
    worker.push(item)


async def handler(worker: Worker, item) -> None:
    relay(worker, item)
    time.sleep(0.1)
