"""Seeded ASYNC005: an async route handler registered in a module
with no typed-error mapping (no ``except`` -> ``error_response``)."""


class MiniServer:
    def __init__(self) -> None:
        self._routes = {
            "/v1/echo": self._handle_echo,
        }

    async def _handle_echo(self, request):
        return {"echo": request}
