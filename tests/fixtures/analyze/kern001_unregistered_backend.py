"""Seeded KERN001: a kernel backend registered under a name with no
KernelBackendExpectation — no parity fixture certifies it bitwise-equal
to the numpy baseline, so the analyzer must refuse it."""


class KernelBackend:
    name = "numpy"
    jit = False


class RogueSimdBackend(KernelBackend):
    name = "simd-unproven"
    jit = True

    def try_push(self, spec, values, read_values, batch, targets, weights):
        return True
