"""Tests for the experiment harness (small scales for speed)."""

import pytest

from repro.bench import (
    ExperimentReport,
    degree_profile,
    figure13_speedups,
    format_table,
    geometric_mean,
    table1_split_properties,
    table3_datasets,
    table4_performance,
    table5_udt_space,
    table6_virtual_space,
    table7_transform_time,
    table8_sssp_profile,
)


class TestReportUtilities:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([2.0, 0.0]) == pytest.approx(2.0)  # zeros skipped

    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "c": 3.5}])
        lines = text.splitlines()
        assert "a" in lines[0] and "c" in lines[0]
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_format_empty(self):
        assert "(no rows)" in format_table([], title="t")

    def test_report_roundtrip(self):
        report = ExperimentReport("X", "desc")
        report.add_row(a=1, b=2.0)
        report.extras["note"] = 5
        text = report.to_text()
        assert "X: desc" in text and "note" in text
        assert report.column("a") == [1]


class TestTable1:
    def test_all_measured_match_predicted(self):
        report = table1_split_properties(degrees=(10, 100), degree_bounds=(3, 7))
        assert report.extras["all_match"]
        assert len(report.rows) == 2 * 2 * 4  # d x K x topologies


class TestTable3:
    def test_six_rows_with_paper_columns(self):
        report = table3_datasets(scale=0.1)
        assert len(report.rows) == 6
        for row in report.rows:
            assert row["nodes"] > 0
            assert row["paper_edges"] >= 31_000_000


class TestTable4Small:
    def test_sssp_row_shape(self):
        report = table4_performance(
            algorithms=("sssp",), datasets=("pokec",), scale=0.25
        )
        row = report.rows[0]
        assert set(row) >= {"mw", "cusha", "gunrock", "tigr-v+", "best"}

    def test_missing_primitives_render_dash(self):
        report = table4_performance(
            algorithms=("sswp", "bc"), datasets=("pokec",), scale=0.25
        )
        by_alg = {r["algorithm"]: r for r in report.rows}
        assert by_alg["sswp"]["gunrock"] == "-"
        assert by_alg["bc"]["mw"] == "-"
        assert by_alg["bc"]["cusha"] == "-"


class TestSpaceTables:
    def test_table5_small_overhead_decreasing(self):
        report = table5_udt_space(scale=0.25, degree_bounds=(50, 500))
        for row in report.rows:
            k50 = float(row["K=50"].rstrip("%"))
            k500 = float(row["K=500"].rstrip("%"))
            assert 100.0 <= k500 <= k50 < 130.0

    def test_table6_band(self):
        report = table6_virtual_space(scale=0.25, degree_bounds=(4, 8, 32))
        for row in report.rows:
            k4 = float(row["K=4"].rstrip("%"))
            k8 = float(row["K=8"].rstrip("%"))
            k32 = float(row["K=32"].rstrip("%"))
            assert k4 > k8 > k32 > 100.0
            assert 125.0 < k4 < 160.0


class TestTable7:
    def test_virtual_much_cheaper(self):
        report = table7_transform_time(scale=0.25, repeats=1)
        assert report.extras["min_ratio"] > 3.0


class TestTable8:
    def test_shape_matches_paper(self):
        report = table8_sssp_profile(scale=0.5)
        rows = {(r["variant"], r["worklist"]): r for r in report.rows}
        # physical splitting raises iteration counts; virtual does not
        assert rows[("physical", "without")]["iterations"] > rows[("original", "without")]["iterations"]
        assert rows[("virtual", "without")]["iterations"] == rows[("original", "without")]["iterations"]
        # both transformations raise warp efficiency
        orig = float(rows[("original", "without")]["warp_efficiency"].rstrip("%"))
        phys = float(rows[("physical", "without")]["warp_efficiency"].rstrip("%"))
        virt = float(rows[("virtual", "without")]["warp_efficiency"].rstrip("%"))
        assert phys > 2 * orig and virt > 2 * orig
        # the worklist slashes instruction counts
        assert rows[("original", "with")]["instructions"] < 0.5 * rows[("original", "without")]["instructions"]


class TestFigure13:
    def test_ordering_small_scale(self):
        report = figure13_speedups(datasets=("livejournal",), scale=0.5)
        udt = report.extras["geomean_tigr-udt"]
        v = report.extras["geomean_tigr-v"]
        vplus = report.extras["geomean_tigr-v+"]
        assert vplus > v > 1.0
        assert udt > 0.5  # physical can dip near 1 at small scale


class TestDegreeProfile:
    def test_majority_below_20(self):
        report = degree_profile(scale=0.5)
        below = [float(r["frac_below_20"].rstrip("%")) for r in report.rows
                 if r["dataset"] in ("pokec", "livejournal", "sinaweibo")]
        assert all(b > 80.0 for b in below)
