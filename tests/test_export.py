"""Tests for JSON report export/import."""

import json

import numpy as np
import pytest

from repro.bench.export import (
    export_key,
    load_report,
    report_to_dict,
    save_report,
)
from repro.bench.report import ExperimentReport


@pytest.fixture
def report():
    r = ExperimentReport("Table X", "a test report")
    r.add_row(dataset="pokec", value=np.float64(1.5), count=np.int64(7))
    r.add_row(dataset="orkut", value=2.5, count=9, missing=float("inf"))
    r.extras["geomean"] = np.float64(1.93)
    r.extras["flags"] = [True, False]
    return r


class TestExport:
    def test_roundtrip(self, report, tmp_path):
        path = tmp_path / "r.json"
        save_report(report, path)
        loaded = load_report(path)
        assert loaded.experiment == report.experiment
        assert loaded.rows[0]["dataset"] == "pokec"
        assert loaded.rows[0]["value"] == 1.5
        assert loaded.extras["geomean"] == pytest.approx(1.93)

    def test_numpy_types_coerced(self, report, tmp_path):
        path = tmp_path / "r.json"
        save_report(report, path)
        raw = json.loads(path.read_text())
        assert isinstance(raw["rows"][0]["value"], float)
        assert isinstance(raw["rows"][0]["count"], int)

    def test_infinity_stringified(self, report, tmp_path):
        path = tmp_path / "r.json"
        save_report(report, path)
        raw = json.loads(path.read_text())
        assert raw["rows"][1]["missing"] == "inf"

    def test_schema_version_present(self, report):
        assert report_to_dict(report)["schema_version"] == 1

    def test_export_key(self):
        assert export_key("Table 1") == "table_1"
        assert export_key("Sec 2.3") == "sec_23"


class TestCLIJson:
    def test_bench_writes_json(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        out = tmp_path / "results"
        assert main(["table1", "--json", str(out)]) == 0
        files = list(out.glob("*.json"))
        assert len(files) == 1
        payload = json.loads(files[0].read_text())
        assert payload["experiment"] == "Table 1"
        assert payload["extras"]["all_match"] is True


class TestCompareResults:
    def _write(self, directory, name, rows):
        from repro.bench.export import save_report
        from repro.bench.report import ExperimentReport

        directory.mkdir(exist_ok=True)
        report = ExperimentReport(name, "d")
        report.rows.extend(rows)
        save_report(report, directory / f"{name}.json")

    def test_identical_runs_agree(self, tmp_path):
        from repro.bench.export import compare_results

        rows = [{"dataset": "pokec", "time_ms": 1.0, "best": "tigr-v+"}]
        self._write(tmp_path / "a", "t4", rows)
        self._write(tmp_path / "b", "t4", rows)
        diff = compare_results(tmp_path / "a", tmp_path / "b")
        assert diff["experiments"] == 1
        assert diff["drifts"] == [] and diff["structural"] == []

    def test_numeric_drift_flagged(self, tmp_path):
        from repro.bench.export import compare_results

        self._write(tmp_path / "a", "t4", [{"time_ms": 1.0}])
        self._write(tmp_path / "b", "t4", [{"time_ms": 1.5}])
        diff = compare_results(tmp_path / "a", tmp_path / "b", tolerance=0.1)
        assert len(diff["drifts"]) == 1
        assert "time_ms" in diff["drifts"][0]

    def test_small_drift_within_tolerance(self, tmp_path):
        from repro.bench.export import compare_results

        self._write(tmp_path / "a", "t4", [{"time_ms": 1.00}])
        self._write(tmp_path / "b", "t4", [{"time_ms": 1.05}])
        diff = compare_results(tmp_path / "a", tmp_path / "b", tolerance=0.1)
        assert diff["drifts"] == []

    def test_winner_change_always_flagged(self, tmp_path):
        from repro.bench.export import compare_results

        self._write(tmp_path / "a", "t4", [{"best": "tigr-v+"}])
        self._write(tmp_path / "b", "t4", [{"best": "cusha"}])
        diff = compare_results(tmp_path / "a", tmp_path / "b")
        assert len(diff["drifts"]) == 1

    def test_structural_changes(self, tmp_path):
        from repro.bench.export import compare_results

        self._write(tmp_path / "a", "t4", [{"x": 1}])
        self._write(tmp_path / "a", "t5", [{"x": 1}])
        self._write(tmp_path / "b", "t4", [{"x": 1}, {"x": 2}])
        diff = compare_results(tmp_path / "a", tmp_path / "b")
        assert any("row count" in s for s in diff["structural"])
        assert any("removed" in s for s in diff["structural"])

    def test_real_artifacts_self_compare(self, tmp_path):
        """A freshly generated artifact directory diffs clean against
        itself (full determinism of the experiments)."""
        from repro.bench.__main__ import main
        from repro.bench.export import compare_results

        out_a, out_b = tmp_path / "a", tmp_path / "b"
        assert main(["table1", "--json", str(out_a)]) == 0
        assert main(["table1", "--json", str(out_b)]) == 0
        diff = compare_results(out_a, out_b, tolerance=0.0)
        assert diff["drifts"] == [] and diff["structural"] == []
