"""Replay harness: golden traces, round-trips, graph resolution."""

import io
from pathlib import Path

import pytest

from repro.errors import ServiceError, TraceFormatError
from repro.graph.generators import rmat
from repro.service import (
    AnalyticsService,
    GraphCatalog,
    QueryRequest,
    TraceRecorder,
    dataset_graph_entry,
    load_trace,
    record_trace,
    replay_trace,
    resolve_trace_graphs,
)
from repro.service.ingest import Trace, TraceHeader, TraceRequest, TraceResult

TRACES = Path(__file__).parent / "traces"
GOLDEN = sorted(p.name for p in TRACES.glob("*.jsonl"))


class TestGoldenTraces:
    """Every checked-in trace must replay digest-clean on both backends.

    These are the suite's broadest regression nets: a change anywhere
    in the algorithm/transform/serving stack that alters an answer
    fails here with the exact request that diverged.
    """

    @pytest.mark.parametrize("name", GOLDEN)
    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_replays_clean(self, name, backend):
        report = replay_trace(
            str(TRACES / name), backend=backend, workers=2
        )
        assert report.digests_checked == report.requests_submitted
        assert report.ok, "\n".join(str(m) for m in report.mismatches)
        assert report.digests_missing == 0

    def test_fixtures_exist(self):
        assert {"bfs-heavy.jsonl", "mixed.jsonl", "degraded.jsonl"} <= set(
            GOLDEN
        )

    def test_loop_reuses_warm_catalog(self):
        report = replay_trace(
            str(TRACES / "bfs-heavy.jsonl"), workers=2, loop=2, batch=4
        )
        assert report.loops == 2
        assert report.requests_submitted == 32
        assert report.digests_checked == 32
        assert report.ok

    def test_replay_counters_land_in_metrics(self):
        with AnalyticsService(GraphCatalog(), workers=2) as service:
            report = replay_trace(
                str(TRACES / "mixed.jsonl"), service=service
            )
            assert report.ok
            summary = service.metrics.summary()
            assert summary["replay_digests_checked"] == report.digests_checked
            assert summary["replay_digest_mismatches"] == 0


class TestRoundTrip:
    """Record fresh traffic, replay it, expect zero mismatches."""

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_record_then_replay(self, powerlaw_graph, backend):
        sink = io.StringIO()
        requests = [
            QueryRequest.single("bfs", "g", s, transform="udt")
            for s in range(6)
        ] + [QueryRequest("pr", "g", transform="virtual")]
        with AnalyticsService(GraphCatalog(), workers=2) as service:
            service.register("g", powerlaw_graph)
            recorder = record_trace(service, sink)
            tickets = service.submit_batch(requests)
            assert all(t.result(60.0).ok for t in tickets)
            service.detach_recorder(recorder)
        recorder.close()

        trace = load_trace(io.StringIO(sink.getvalue()))
        report = replay_trace(
            trace, backend=backend, workers=2, graphs={"g": powerlaw_graph}
        )
        assert report.requests_submitted == 7
        assert report.digests_checked == 7
        assert report.ok, "\n".join(str(m) for m in report.mismatches)

    def test_rerecord_while_replaying(self, powerlaw_graph):
        first = io.StringIO()
        with AnalyticsService(GraphCatalog(), workers=2) as service:
            service.register("g", powerlaw_graph)
            recorder = record_trace(service, first)
            tickets = service.submit_batch(
                [QueryRequest.single("bfs", "g", s) for s in range(4)]
            )
            assert all(t.result(60.0).ok for t in tickets)
            service.detach_recorder(recorder)
        recorder.close()

        second = io.StringIO()
        report = replay_trace(
            load_trace(io.StringIO(first.getvalue())),
            workers=2,
            graphs={"g": powerlaw_graph},
            recorder=TraceRecorder(second),
        )
        assert report.ok
        rerecorded = load_trace(io.StringIO(second.getvalue()))
        assert len(rerecorded.requests) == 4
        original = load_trace(io.StringIO(first.getvalue()))
        by_sources = {r.sources: r for r in original.requests}
        for request in rerecorded.requests:
            twin = by_sources[request.sources]
            assert (
                rerecorded.results[request.trace_id].digest
                == original.results[twin.trace_id].digest
            )

    def test_mismatch_reported_not_raised(self, powerlaw_graph):
        sink = io.StringIO()
        with AnalyticsService(GraphCatalog(), workers=1) as service:
            service.register("g", powerlaw_graph)
            recorder = record_trace(service, sink)
            assert service.run(QueryRequest.single("bfs", "g", 0)).ok
            service.detach_recorder(recorder)
        recorder.close()
        text = sink.getvalue()
        trace = load_trace(io.StringIO(text))
        # corrupt the recorded digest: replay must *report* the diff
        trace_id = trace.requests[0].trace_id
        trace.results[trace_id] = TraceResult(
            trace_id=trace_id, digest="sha256:" + "0" * 64
        )
        report = replay_trace(trace, workers=1, graphs={"g": powerlaw_graph})
        assert not report.ok
        assert len(report.mismatches) == 1
        mismatch = report.mismatches[0]
        assert mismatch.trace_id == trace_id
        assert mismatch.algorithm == "bfs"
        assert "expected sha256:000" in str(mismatch)
        assert report.summary()["digests_mismatched"] == 1
        assert "MISMATCH" in report.to_text()

    def test_verify_off_counts_nothing(self, powerlaw_graph):
        report = replay_trace(
            str(TRACES / "bfs-heavy.jsonl"), workers=2, verify=False
        )
        assert report.digests_checked == 0
        assert report.ok


class TestResolveTraceGraphs:
    def _trace(self, graphs, requests=()):
        return Trace(
            header=TraceHeader(graphs=graphs),
            requests=list(requests),
            results={},
        )

    def test_dataset_recipe_regenerates(self):
        trace = self._trace(
            {"p": dataset_graph_entry("pokec", scale=0.1)},
            [TraceRequest(trace_id=1, algorithm="pr", graph="p")],
        )
        graphs = resolve_trace_graphs(trace)
        assert graphs["p"].num_nodes > 0

    def test_fingerprint_drift_is_typed_error(self):
        trace = self._trace(
            {
                "p": dataset_graph_entry(
                    "pokec", scale=0.1, fingerprint="beef" * 16
                )
            },
            [TraceRequest(trace_id=1, algorithm="pr", graph="p")],
        )
        with pytest.raises(TraceFormatError, match="re-record"):
            resolve_trace_graphs(trace)

    def test_override_wins_over_recipe(self):
        graph = rmat(50, 200, seed=3)
        trace = self._trace(
            {"p": dataset_graph_entry("pokec", scale=0.1)},
            [TraceRequest(trace_id=1, algorithm="pr", graph="p")],
        )
        graphs = resolve_trace_graphs(trace, overrides={"p": graph})
        assert graphs["p"] is graph

    def test_referenced_graph_without_recipe(self):
        trace = self._trace(
            {"p": {"fingerprint": "ab"}},
            [TraceRequest(trace_id=1, algorithm="pr", graph="p")],
        )
        with pytest.raises(TraceFormatError, match="no reconstruction"):
            resolve_trace_graphs(trace)

    def test_unknown_reference(self):
        trace = self._trace(
            {}, [TraceRequest(trace_id=1, algorithm="pr", graph="ghost")]
        )
        with pytest.raises(ServiceError, match="ghost"):
            resolve_trace_graphs(trace)

    def test_npz_recipe_loads(self, tmp_path, powerlaw_graph):
        from repro.graph.io import save_npz

        path = tmp_path / "g.npz"
        save_npz(powerlaw_graph, path)
        trace = self._trace(
            {
                "g": {
                    "path": str(path),
                    "fingerprint": powerlaw_graph.fingerprint(),
                }
            },
            [TraceRequest(trace_id=1, algorithm="pr", graph="g")],
        )
        graphs = resolve_trace_graphs(trace)
        assert graphs["g"].num_nodes == powerlaw_graph.num_nodes


class TestReplayValidation:
    def test_bad_loop(self):
        with pytest.raises(ServiceError, match="loop"):
            replay_trace(str(TRACES / "mixed.jsonl"), loop=0)

    def test_bad_batch(self):
        with pytest.raises(ServiceError, match="batch"):
            replay_trace(str(TRACES / "mixed.jsonl"), batch=0)

    def test_bad_speed(self):
        with pytest.raises(ServiceError, match="speed"):
            replay_trace(str(TRACES / "mixed.jsonl"), speed=-1)
