"""Unit tests for node reordering strategies."""

import numpy as np
import pytest

from repro.algorithms.reference import reference_sssp
from repro.graph.builder import from_edge_list
from repro.graph.generators import path_graph, rmat, star
from repro.graph.reorder import (
    apply_order,
    bfs_order,
    bfs_ordered,
    degree_sort_order,
    degree_sorted,
    random_order,
)


class TestDegreeSort:
    def test_descending_puts_hub_first(self):
        g = star(10)
        perm = degree_sort_order(g)
        assert perm[0] == 0  # the hub keeps id 0 (highest degree)

    def test_ascending(self):
        g = star(10)
        perm = degree_sort_order(g, descending=False)
        assert perm[0] == 10  # hub gets the last id

    def test_degrees_monotone_after_relabel(self, powerlaw_graph):
        sorted_graph = degree_sorted(powerlaw_graph)
        degrees = sorted_graph.out_degrees()
        assert np.all(np.diff(degrees) <= 0)

    def test_is_permutation(self, powerlaw_graph):
        perm = degree_sort_order(powerlaw_graph)
        assert sorted(perm.tolist()) == list(range(powerlaw_graph.num_nodes))

    def test_deterministic(self, powerlaw_graph):
        assert np.array_equal(
            degree_sort_order(powerlaw_graph), degree_sort_order(powerlaw_graph)
        )


class TestBFSOrder:
    def test_source_first(self, powerlaw_graph, hub_source):
        perm = bfs_order(powerlaw_graph, source=hub_source)
        assert perm[hub_source] == 0

    def test_path_identity(self):
        g = path_graph(6)
        assert bfs_order(g, source=0).tolist() == [0, 1, 2, 3, 4, 5]

    def test_unreached_appended(self):
        g = from_edge_list([(0, 1)], num_nodes=4)
        perm = bfs_order(g, source=0)
        assert perm[0] == 0 and perm[1] == 1
        assert set(perm[2:].tolist()) == {2, 3}

    def test_empty_graph(self):
        g = from_edge_list([], num_nodes=0)
        assert len(bfs_order(g)) == 0


class TestSemanticsPreserved:
    """Relabeling changes ids, never answers."""

    @pytest.mark.parametrize("reorder", [degree_sorted, bfs_ordered])
    def test_sssp_invariant_under_reorder(self, reorder):
        g = rmat(120, 900, seed=17, weight_range=(1, 9))
        src = int(np.argmax(g.out_degrees()))
        ref = reference_sssp(g, src)
        if reorder is degree_sorted:
            perm = degree_sort_order(g)
        else:
            perm = bfs_order(g, source=src)
        relabeled = apply_order(g, perm)
        got = reference_sssp(relabeled, int(perm[src]))
        # distances of node v now live at perm[v]
        assert np.allclose(got[perm], ref)

    def test_random_order_seeded(self, powerlaw_graph):
        a = random_order(powerlaw_graph, seed=3)
        b = random_order(powerlaw_graph, seed=3)
        assert np.array_equal(a, b)
        assert sorted(a.tolist()) == list(range(powerlaw_graph.num_nodes))
