"""Tests for the terminal bar-chart renderer."""

import pytest

from repro.bench.chart import bar_chart, render_bar


class TestRenderBar:
    def test_full_width(self):
        assert render_bar(10, 10, width=8) == "█" * 8

    def test_half_width(self):
        assert render_bar(5, 10, width=8) == "█" * 4

    def test_fractional_cell(self):
        bar = render_bar(1, 16, width=8)  # half a cell
        assert bar == "▌"

    def test_zero_and_negative(self):
        assert render_bar(0, 10) == ""
        assert render_bar(-1, 10) == ""
        assert render_bar(5, 0) == ""


class TestBarChart:
    def rows(self):
        return [
            {"name": "a", "x": 1.0, "y": 2.0},
            {"name": "b", "x": 4.0, "y": 0.5},
        ]

    def test_all_labels_and_values_present(self):
        text = bar_chart(self.rows(), label_key="name", value_keys=["x", "y"])
        for token in ("a", "b", "1.00", "4.00", "0.50"):
            assert token in text

    def test_longest_bar_is_max(self):
        text = bar_chart(self.rows(), label_key="name", value_keys=["x"], width=10)
        lines = [l for l in text.splitlines() if "█" in l]
        assert max(l.count("█") for l in lines) == 10

    def test_title_and_reference(self):
        text = bar_chart(self.rows(), label_key="name", value_keys=["x"],
                         title="T", reference=1.0)
        assert text.startswith("T")
        assert "reference" in text

    def test_nan_rendered_as_na(self):
        rows = [{"name": "a", "x": float("nan")}, {"name": "b", "x": 2.0}]
        text = bar_chart(rows, label_key="name", value_keys=["x"])
        assert "(n/a)" in text

    def test_empty(self):
        assert "(no data)" in bar_chart([], label_key="n", value_keys=["x"], title="t")

    def test_figure13_report_carries_chart(self):
        from repro.bench import figure13_speedups

        report = figure13_speedups(datasets=("pokec",), scale=0.25)
        assert "█" in report.extras["chart"]
