"""Unit tests for degree statistics and diameter estimation."""

import numpy as np
import pytest

from repro.graph.builder import from_edge_list
from repro.graph.generators import path_graph, regular_ring, star
from repro.graph.stats import (
    bfs_eccentricity,
    degree_histogram,
    degree_stats,
    estimate_diameter,
    gini_coefficient,
)


class TestGini:
    def test_empty(self):
        assert gini_coefficient([]) == 0.0

    def test_all_zero(self):
        assert gini_coefficient([0, 0, 0]) == 0.0

    def test_perfect_equality(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-12)

    def test_total_inequality_approaches_one(self):
        values = [0] * 999 + [100]
        assert gini_coefficient(values) > 0.99

    def test_known_value(self):
        # G([1, 3]) = (2*(1*1 + 2*3)/(2*4)) - 3/2 = 7/4 - 3/2 = 0.25
        assert gini_coefficient([1, 3]) == pytest.approx(0.25)

    def test_scale_invariant(self):
        vals = [1, 2, 3, 10]
        assert gini_coefficient(vals) == pytest.approx(
            gini_coefficient([10 * v for v in vals])
        )


class TestDegreeStats:
    def test_regular_graph(self):
        stats = degree_stats(regular_ring(10, 3))
        assert stats.min_degree == stats.max_degree == 3
        assert stats.coefficient_of_variation == 0.0
        assert stats.gini == pytest.approx(0.0, abs=1e-12)

    def test_star_graph(self):
        stats = degree_stats(star(50))
        assert stats.max_degree == 50
        assert stats.mean_degree == pytest.approx(50 / 51)
        assert stats.frac_degree_below_20 == pytest.approx(50 / 51)

    def test_empty_graph(self):
        from repro.graph.csr import CSRGraph

        stats = degree_stats(CSRGraph(np.array([0]), np.array([], dtype=np.int64)))
        assert stats.num_nodes == 0
        assert stats.mean_degree == 0.0

    def test_as_dict_keys(self):
        d = degree_stats(star(3)).as_dict()
        assert "gini" in d and "max_degree" in d


class TestHistogram:
    def test_default_bins(self):
        h = degree_histogram(star(30))
        assert h["[0, 20)"] == 30  # the leaves
        assert h["[20, 100)"] == 1  # the hub

    def test_custom_bins(self):
        h = degree_histogram(star(5), bins=[0, 6])
        assert h["[0, 6)"] == 6
        assert h["[6, inf)"] == 0


class TestEccentricityAndDiameter:
    def test_path_eccentricity(self):
        g = path_graph(10)
        assert bfs_eccentricity(g, 0) == 9
        assert bfs_eccentricity(g, 9) == 0

    def test_star_eccentricity(self):
        assert bfs_eccentricity(star(5), 0) == 1

    def test_diameter_path(self):
        g = path_graph(12)
        assert estimate_diameter(g, num_sources=12, seed=0) == 11

    def test_diameter_includes_hub(self):
        # even with few samples the max-degree node is always included
        g = star(40)
        assert estimate_diameter(g, num_sources=1, seed=0) >= 1

    def test_diamond(self):
        g = from_edge_list([(0, 1), (0, 2), (1, 3), (2, 3)])
        assert bfs_eccentricity(g, 0) == 2
