"""HTTP front door: wire parity, streaming, auth, limits, errors."""

import http.client
import io
import json
import threading
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.service import (
    AnalyticsService,
    GraphCatalog,
    QueryRequest,
    TraceRecorder,
    load_trace,
    resolve_trace_graphs,
    result_digest,
)
from repro.service.api import (
    HttpReplayClient,
    HttpStatusError,
    RateLimit,
    ThreadedApiServer,
    replay_trace_http,
    verify_graphs,
)

MIXED_TRACE = str(Path(__file__).parent / "traces" / "mixed.jsonl")


@pytest.fixture
def service(powerlaw_graph):
    with AnalyticsService(GraphCatalog(), workers=2) as svc:
        svc.register("g", powerlaw_graph)
        yield svc


@pytest.fixture
def server(service):
    with ThreadedApiServer(service) as handle:
        yield handle


@pytest.fixture
def client(server):
    with HttpReplayClient(server.address) as c:
        yield c


def _raw_request(address, method, path, body=None, headers=None):
    """One request on a throwaway connection; returns (status, headers,
    body-bytes) with header names lower-cased."""
    host, _, port = address.rpartition(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=30)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        payload = response.read()
        return (
            response.status,
            {k.lower(): v for k, v in response.getheaders()},
            payload,
        )
    finally:
        conn.close()


class TestHealthz:
    def test_identity_and_graphs(self, client, service, powerlaw_graph):
        body = client.healthz()
        assert body["status"] == "ok"
        assert body["version"] == repro.version_string()
        assert body["backend"] == service.backend
        assert body["workers"] == 2
        assert body["graphs"] == {"g": powerlaw_graph.fingerprint()}

    def test_exempt_from_auth(self, service):
        with ThreadedApiServer(service, auth_tokens=("secret",)) as handle:
            with HttpReplayClient(handle.address) as client:  # no token
                assert client.healthz()["status"] == "ok"


class TestQuery:
    def test_digest_parity_with_in_process(self, client, service):
        in_process = service.run(QueryRequest.single("bfs", "g", 0))
        wire = client.query(
            {"algorithm": "bfs", "graph": "g", "sources": [0]}
        )
        assert wire["type"] == "result"
        assert wire["ok"] is True
        assert wire["digest"] == result_digest(in_process)

    def test_include_values_round_trips(self, client, service):
        in_process = service.run(QueryRequest.single("bfs", "g", 3))
        wire = client.query(
            {
                "algorithm": "bfs",
                "graph": "g",
                "sources": [3],
                "include_values": True,
            }
        )
        values = wire["values"]["3"]
        expected = in_process.values[3]
        assert len(values) == len(expected)
        for got, want in zip(values, expected):
            if got is None:
                assert not np.isfinite(want)  # infinity -> null
            else:
                assert got == pytest.approx(float(want))

    def test_unknown_graph_is_404(self, client):
        with pytest.raises(HttpStatusError) as info:
            client.query({"algorithm": "bfs", "graph": "nope", "sources": [0]})
        assert info.value.status == 404
        assert info.value.body["error"]["type"] == "unknown_graph"
        assert "nope" in info.value.body["error"]["message"]

    def test_unknown_algorithm_is_400(self, client):
        with pytest.raises(HttpStatusError) as info:
            client.query({"algorithm": "dijkstra", "graph": "g"})
        assert info.value.status == 400

    def test_malformed_json_is_400(self, server):
        status, _, body = _raw_request(
            server.address, "POST", "/v1/query", body=b"{nope",
            headers={"Content-Type": "application/json"},
        )
        assert status == 400
        assert json.loads(body)["error"]["type"] == "bad_request"

    def test_method_not_allowed_is_405(self, server):
        status, headers, _ = _raw_request(server.address, "GET", "/v1/query")
        assert status == 405
        assert "POST" in headers["allow"]

    def test_unknown_route_is_404(self, server):
        status, _, body = _raw_request(server.address, "GET", "/v2/query")
        assert status == 404
        assert json.loads(body)["error"]["type"] == "not_found"

    def test_wrong_content_type_is_415(self, server):
        status, _, _ = _raw_request(
            server.address, "POST", "/v1/query", body=b"<xml/>",
            headers={"Content-Type": "text/xml"},
        )
        assert status == 415

    def test_empty_body_is_400(self, server):
        status, _, _ = _raw_request(
            server.address, "POST", "/v1/query", body=b"",
            headers={"Content-Type": "application/json"},
        )
        assert status == 400

    def test_chunked_request_body_is_411(self, server):
        status, _, _ = _raw_request(
            server.address, "POST", "/v1/query", body=None,
            headers={"Transfer-Encoding": "chunked"},
        )
        assert status == 411


class TestBatch:
    def test_ndjson_digest_parity(self, client, service):
        expected = {
            s: result_digest(service.run(QueryRequest.single("bfs", "g", s)))
            for s in range(4)
        }
        lines = [
            json.dumps(
                {
                    "type": "request", "id": s, "algorithm": "bfs",
                    "graph": "g", "sources": [s],
                }
            )
            for s in range(4)
        ]
        seen = {}
        for payload, _arrival in client.batch_lines(lines):
            assert payload["ok"] is True
            seen[payload["id"]] = payload["digest"]
        assert seen == expected

    def test_streams_before_batch_completes(self, powerlaw_graph):
        gate = threading.Event()
        slow_graph = powerlaw_graph.without_weights()
        with AnalyticsService(GraphCatalog(), workers=2) as svc:
            svc.register("fast", powerlaw_graph)
            svc.register("slow", slow_graph)
            original = svc._prepare

            def gated(graph, algorithm):
                if graph is slow_graph:
                    gate.wait(30.0)
                return original(graph, algorithm)

            svc._prepare = gated
            try:
                with ThreadedApiServer(svc) as handle:
                    with HttpReplayClient(handle.address) as client:
                        lines = [
                            json.dumps({
                                "type": "request", "id": 1,
                                "algorithm": "bfs", "graph": "slow",
                                "sources": [0],
                            }),
                            json.dumps({
                                "type": "request", "id": 2,
                                "algorithm": "bfs", "graph": "fast",
                                "sources": [0],
                            }),
                        ]
                        stream = client.batch_lines(lines)
                        first, _ = next(stream)
                        # the fast request's line arrived while the
                        # slow one was still gated: incremental, not
                        # buffer-then-flush
                        assert first["id"] == 2
                        assert not gate.is_set()
                        gate.set()
                        second, _ = next(stream)
                        assert second["id"] == 1
                        assert list(stream) == []
            finally:
                gate.set()

    def test_batch_line_error_names_the_line(self, server):
        body = b'{"type": "request", "algorithm": "bfs", "graph": "g"}\n{nope\n'
        status, _, payload = _raw_request(
            server.address, "POST", "/v1/batch", body=body,
            headers={"Content-Type": "application/x-ndjson"},
        )
        assert status == 400
        assert "line 2" in json.loads(payload)["error"]["message"]

    def test_include_values_via_query_param(self, client):
        lines = [json.dumps(
            {"type": "request", "id": 7, "algorithm": "bfs",
             "graph": "g", "sources": [0]}
        )]
        conn = http.client.HTTPConnection(
            client.host, client.port, timeout=30
        )
        try:
            conn.request(
                "POST", "/v1/batch?include_values=1",
                body=(lines[0] + "\n").encode(),
                headers={"Content-Type": "application/x-ndjson"},
            )
            response = conn.getresponse()
            assert response.status == 200
            payload = json.loads(response.readline())
            assert "values" in payload and "0" in payload["values"]
        finally:
            conn.close()


class TestAuth:
    @pytest.fixture
    def secured(self, service):
        with ThreadedApiServer(
            service, auth_tokens=("alpha", "beta")
        ) as handle:
            yield handle

    def test_missing_token_is_401(self, secured):
        status, headers, body = _raw_request(
            secured.address, "GET", "/v1/metrics"
        )
        assert status == 401
        assert headers["www-authenticate"] == "Bearer"
        assert json.loads(body)["error"]["type"] == "unauthorized"

    def test_wrong_token_is_401(self, secured):
        with HttpReplayClient(secured.address, token="gamma") as client:
            with pytest.raises(HttpStatusError) as info:
                client.metrics()
        assert info.value.status == 401

    def test_accepted_token_passes(self, secured):
        with HttpReplayClient(secured.address, token="beta") as client:
            result = client.query(
                {"algorithm": "bfs", "graph": "g", "sources": [0]}
            )
        assert result["ok"] is True


class TestRateLimit:
    def test_bucket_refill_with_fake_clock(self):
        now = [0.0]
        limiter = RateLimit(2.0, 2, clock=lambda: now[0])
        assert limiter._take("k") == 0.0
        assert limiter._take("k") == 0.0
        wait = limiter._take("k")  # bucket empty
        assert wait == pytest.approx(0.5)
        now[0] += 0.5  # one token refilled
        assert limiter._take("k") == 0.0
        assert limiter._take("other") == 0.0  # separate bucket per key

    def test_over_limit_is_429_with_retry_after(self, service):
        with ThreadedApiServer(
            service, auth_tokens=("tok",), rate_limit=0.5, burst=2
        ) as handle:
            with HttpReplayClient(handle.address, token="tok") as client:
                for _ in range(2):
                    assert client.query(
                        {"algorithm": "bfs", "graph": "g", "sources": [0]}
                    )["ok"]
                with pytest.raises(HttpStatusError) as info:
                    client.query(
                        {"algorithm": "bfs", "graph": "g", "sources": [0]}
                    )
        assert info.value.status == 429
        assert info.value.body["error"]["type"] == "rate_limited"
        assert info.value.body["error"]["retry_after_s"] > 0
        assert service.metrics.summary()["http_rate_limited"] == 1

    def test_healthz_never_rate_limited(self, service):
        with ThreadedApiServer(
            service, rate_limit=0.5, burst=1
        ) as handle:
            with HttpReplayClient(handle.address) as client:
                for _ in range(5):
                    assert client.healthz()["status"] == "ok"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            RateLimit(0.0, 4)
        with pytest.raises(ValueError, match="burst"):
            RateLimit(1.0, 0)


class TestOverload:
    def test_full_queue_is_503(self, powerlaw_graph):
        gate = threading.Event()
        with AnalyticsService(
            GraphCatalog(), workers=1, queue_size=1
        ) as svc:
            svc.register("g", powerlaw_graph)
            original = svc._prepare

            def stalled(graph, algorithm):
                gate.wait(30.0)
                return original(graph, algorithm)

            svc._prepare = stalled
            stuck = svc.submit(QueryRequest.single("bfs", "g", 0))
            time.sleep(0.05)  # worker picks it up and stalls
            queued = svc.submit(
                QueryRequest.single("bfs", "g", 1), block=False
            )
            try:
                with ThreadedApiServer(
                    svc, admission_wait_s=0.05
                ) as handle:
                    status, headers, body = _raw_request(
                        handle.address, "POST", "/v1/query",
                        body=json.dumps({
                            "algorithm": "bfs", "graph": "g", "sources": [2],
                        }).encode(),
                        headers={"Content-Type": "application/json"},
                    )
                    assert status == 503
                    assert int(headers["retry-after"]) >= 1
                    assert json.loads(body)["error"]["type"] == "overloaded"
            finally:
                gate.set()
            assert stuck.result(60.0).ok and queued.result(60.0).ok


class TestMetricsEndpoint:
    def test_http_counters_advance(self, client):
        before = client.metrics()
        assert client.query(
            {"algorithm": "bfs", "graph": "g", "sources": [0]}
        )["ok"]
        with pytest.raises(HttpStatusError):
            client.query({"algorithm": "bfs", "graph": "nope"})
        after = client.metrics()
        assert after["http_requests"] >= before["http_requests"] + 2
        assert after["http_2xx"] >= before["http_2xx"] + 1
        assert after["http_4xx"] >= before["http_4xx"] + 1
        assert after["http_bytes_sent"] > before["http_bytes_sent"]
        assert after["http_p95_ms"] >= after["http_p50_ms"] >= 0.0


class TestGoldenTraceOverHttp:
    """The end-to-end parity gate the http-smoke CI job enforces."""

    @pytest.fixture(scope="class")
    def mixed_setup(self):
        trace = load_trace(MIXED_TRACE)
        graphs = resolve_trace_graphs(trace)
        with AnalyticsService(GraphCatalog(), workers=2) as svc:
            for name, graph in graphs.items():
                svc.register(name, graph)
            with ThreadedApiServer(svc) as handle:
                yield trace, handle

    def test_replay_matches_every_digest(self, mixed_setup):
        trace, handle = mixed_setup
        report = replay_trace_http(trace, handle.address, batch=8)
        assert report.ok, "\n".join(str(m) for m in report.mismatches)
        assert report.digests_checked == len(trace.results)
        assert report.requests_submitted == len(trace.requests)

    def test_single_query_window_matches_too(self, mixed_setup):
        trace, handle = mixed_setup
        report = replay_trace_http(trace, handle.address, batch=1)
        assert report.ok
        assert report.digests_checked == len(trace.results)

    def test_verify_graphs_catches_missing(self, mixed_setup, server):
        trace, _handle = mixed_setup
        # `server` fronts a service registered with "g", not the
        # trace's graphs: the pre-check must name what is missing
        with HttpReplayClient(server.address) as client:
            problems = verify_graphs(client, trace)
        assert problems
        assert any("not registered" in p for p in problems)

    def test_recorded_http_traffic_replays_in_process(self, mixed_setup):
        # the round trip: traffic served over HTTP is recorded by the
        # service-side recorder, and the capture replays in-process
        # with identical digests (both sides speak trace-v1)
        from repro.service import replay_trace

        trace, handle = mixed_setup
        sink = io.StringIO()
        recorder = TraceRecorder(sink, graphs=trace.header.graphs)
        service = handle.server.service
        service.attach_recorder(recorder)
        try:
            report = replay_trace_http(trace, handle.address, batch=8)
            assert report.ok
        finally:
            service.detach_recorder()
        captured = load_trace(io.StringIO(sink.getvalue()))
        assert len(captured.requests) == len(trace.requests)
        replayed = replay_trace(
            captured, graphs=resolve_trace_graphs(trace), workers=2
        )
        assert replayed.ok
        assert replayed.digests_checked == len(captured.results)
