"""Batching: grouping rules, source dedup, result equivalence."""

import random

import numpy as np
import pytest

from repro.algorithms import bfs, pagerank, sssp, sswp
from repro.core.virtual import virtual_transform
from repro.engine.push import EngineOptions
from repro.graph.generators import rmat
from repro.service import (
    AnalyticsService,
    GraphCatalog,
    QueryRequest,
    group_requests,
)
from repro.service.batching import run_batch_on_target


@pytest.fixture
def graph():
    return rmat(140, 1000, seed=11, weight_range=(1, 9))


def resolve_with(graph):
    def resolver(request):
        assert isinstance(request.graph, str)
        return graph

    return resolver


class TestGrouping:
    def test_same_plan_coalesces(self, graph):
        requests = [QueryRequest.single("sssp", "g", s) for s in (0, 1, 2)]
        batches = group_requests(requests, resolve_with(graph))
        assert len(batches) == 1
        assert batches[0].sources == (0, 1, 2)

    def test_different_algorithms_split(self, graph):
        requests = [
            QueryRequest.single("sssp", "g", 0),
            QueryRequest.single("bfs", "g", 0),
        ]
        assert len(group_requests(requests, resolve_with(graph))) == 2

    def test_different_transform_or_k_split(self, graph):
        requests = [
            QueryRequest.single("sssp", "g", 0, transform="virtual+"),
            QueryRequest.single("sssp", "g", 0, transform="none"),
            QueryRequest.single("sssp", "g", 0, transform="virtual+", degree_bound=4),
        ]
        assert len(group_requests(requests, resolve_with(graph))) == 3

    def test_different_options_split(self, graph):
        requests = [
            QueryRequest.single("sssp", "g", 0),
            QueryRequest.single(
                "sssp", "g", 0, options=EngineOptions(worklist=False)
            ),
        ]
        assert len(group_requests(requests, resolve_with(graph))) == 2

    def test_content_twins_coalesce_across_names(self, graph):
        twin = rmat(140, 1000, seed=11, weight_range=(1, 9))
        graphs = {"a": graph, "b": twin}
        requests = [
            QueryRequest.single("sssp", "a", 0),
            QueryRequest.single("sssp", "b", 1),
        ]
        batches = group_requests(requests, lambda r: graphs[r.graph])
        assert len(batches) == 1

    def test_source_dedup_counted(self, graph):
        requests = [
            QueryRequest("sssp", "g", sources=(0, 1)),
            QueryRequest("sssp", "g", sources=(1, 2)),
            QueryRequest.single("sssp", "g", 2),
        ]
        (batch,) = group_requests(requests, resolve_with(graph))
        assert batch.sources == (0, 1, 2)
        assert batch.sources_deduped == 2

    def test_tightest_timeout(self, graph):
        requests = [
            QueryRequest.single("sssp", "g", 0, timeout_s=5.0),
            QueryRequest.single("sssp", "g", 1, timeout_s=1.0),
            QueryRequest.single("sssp", "g", 2),
        ]
        (batch,) = group_requests(requests, resolve_with(graph))
        assert batch.tightest_timeout_s == 1.0

    def test_out_of_range_source_rejected_at_submit(self, graph):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="out of range"):
            group_requests(
                [QueryRequest.single("sssp", "g", graph.num_nodes)],
                resolve_with(graph),
            )

    def test_no_timeouts_is_inf(self, graph):
        (batch,) = group_requests(
            [QueryRequest.single("sssp", "g", 0)], resolve_with(graph)
        )
        assert batch.tightest_timeout_s == float("inf")


class TestFanOutEquivalence:
    """Batched execution must be bit-identical to per-source runs."""

    def test_sssp_batch_matches_per_source(self, graph):
        target = virtual_transform(graph, 10, coalesced=True)
        requests = [QueryRequest.single("sssp", "g", s) for s in (3, 7, 3, 12)]
        (batch,) = group_requests(requests, resolve_with(graph))
        out, _ = run_batch_on_target(batch, target)
        for request in requests:
            (source,) = request.sources
            expected = sssp(target, source).values
            np.testing.assert_array_equal(
                out[request.request_id][source], expected
            )

    def test_bfs_batch_matches_per_source(self, graph):
        unweighted = graph.without_weights()
        target = virtual_transform(unweighted, 10, coalesced=True)
        requests = [QueryRequest.single("bfs", "g", s) for s in (0, 5, 9)]
        (batch,) = group_requests(requests, resolve_with(unweighted))
        out, _ = run_batch_on_target(batch, target)
        for request in requests:
            (source,) = request.sources
            np.testing.assert_array_equal(
                out[request.request_id][source], bfs(target, source).values
            )

    def test_sswp_per_source_path(self, graph):
        target = virtual_transform(graph, 10, coalesced=True)
        requests = [QueryRequest.single("sswp", "g", s) for s in (1, 4)]
        (batch,) = group_requests(requests, resolve_with(graph))
        out, _ = run_batch_on_target(batch, target)
        for request in requests:
            (source,) = request.sources
            np.testing.assert_array_equal(
                out[request.request_id][source], sswp(target, source).values
            )

    def test_sourceless_shared_run(self, graph):
        unweighted = graph.without_weights()
        target = virtual_transform(unweighted, 10, coalesced=True)
        requests = [QueryRequest("pr", "g"), QueryRequest("pr", "g")]
        (batch,) = group_requests(requests, resolve_with(unweighted))
        out, _ = run_batch_on_target(batch, target)
        expected = pagerank(target).values
        first, second = (out[r.request_id][-1] for r in requests)
        np.testing.assert_allclose(first, expected)
        assert first is second  # one run, shared by both members

    def test_duplicate_sources_share_one_row(self, graph):
        target = virtual_transform(graph, 10, coalesced=True)
        requests = [QueryRequest.single("sssp", "g", 6) for _ in range(3)]
        (batch,) = group_requests(requests, resolve_with(graph))
        assert batch.sources == (6,)
        out, _ = run_batch_on_target(batch, target)
        rows = [out[r.request_id][6] for r in requests]
        assert rows[0] is rows[1] is rows[2]


class TestEndToEndBatchedService:
    def test_batched_results_match_individual_runs(self, graph):
        """The ISSUE's satellite: batched == per-source, exactly."""
        sources = (2, 9, 2, 17, 33)
        requests = [QueryRequest.single("sssp", "g", s) for s in sources]
        with AnalyticsService(GraphCatalog(), workers=2) as service:
            service.register("g", graph)
            batched = [t.result(60) for t in service.submit_batch(requests)]
        individual = {}
        for source in set(sources):
            with AnalyticsService(GraphCatalog(), workers=1) as service:
                service.register("g", graph)
                individual[source] = service.run(
                    QueryRequest.single("sssp", "g", source)
                )
        for source, result in zip(sources, batched):
            assert result.ok
            assert result.batched_with == len(sources) - 1
            np.testing.assert_array_equal(
                result.value(source), individual[source].value(source)
            )

    def test_batch_metrics_attribution(self, graph):
        requests = [
            QueryRequest("sssp", "g", sources=(0, 1)),
            QueryRequest("sssp", "g", sources=(1, 2)),
        ]
        with AnalyticsService(GraphCatalog(), workers=1) as service:
            service.register("g", graph)
            results = [t.result(60) for t in service.submit_batch(requests)]
            assert all(r.ok for r in results)
            # batch-level quantities counted once, not per member
            assert service.metrics.batches_merged == 1
            assert service.metrics.sources_deduped == 1

    def test_mixed_algorithms_in_one_submit(self, graph):
        requests = [
            QueryRequest.single("sssp", "g", 0),
            QueryRequest.single("bfs", "g", 0),
            QueryRequest("pr", "g"),
        ]
        with AnalyticsService(GraphCatalog(), workers=2) as service:
            service.register("g", graph)
            results = [t.result(60) for t in service.submit_batch(requests)]
        assert [r.algorithm for r in results] == ["sssp", "bfs", "pr"]
        assert all(r.ok for r in results)

    def test_fuzz_batched_equals_scalar_path(self, graph):
        """Property test: any random request mix, batched == scalar.

        A seeded RNG builds mixes across algorithms, transforms, K
        values, and single/multi-source shapes; the whole mix goes
        through ``submit_batch`` (coalescing, dedup, lane fan-out) on
        both backends and every value array must be *bitwise* equal to
        the same request served alone by a scalar one-worker service.
        """
        unweighted = graph.without_weights()
        graphs = {"w": graph, "uw": unweighted}

        def random_mix(rng):
            requests = []
            for _ in range(rng.randrange(4, 10)):
                algorithm = rng.choice(("bfs", "sssp", "sswp", "pr", "cc"))
                name = "w" if algorithm in ("sssp", "sswp") else rng.choice(
                    ("w", "uw")
                )
                transform = (
                    rng.choice(("auto", "virtual", "virtual+"))
                    if algorithm in ("pr", "bc")
                    else rng.choice(("auto", "udt", "virtual", "none"))
                )
                k = rng.choice((None, 4, 12))
                if algorithm in ("pr", "cc"):
                    requests.append(
                        QueryRequest(
                            algorithm, name,
                            transform=transform, degree_bound=k,
                        )
                    )
                else:
                    count = rng.choice((1, 1, 1, 3))
                    sources = tuple(
                        rng.randrange(graph.num_nodes) for _ in range(count)
                    )
                    requests.append(
                        QueryRequest(
                            algorithm, name, sources=sources,
                            transform=transform, degree_bound=k,
                        )
                    )
            return requests

        # scalar reference: one request at a time, no coalescing
        def scalar(request):
            clone = QueryRequest(
                request.algorithm, request.graph, sources=request.sources,
                transform=request.transform, degree_bound=request.degree_bound,
            )
            with AnalyticsService(GraphCatalog(), workers=1) as solo:
                for name, g in graphs.items():
                    solo.register(name, g)
                return solo.run(clone)

        for backend in ("threads", "processes"):
            rng = random.Random(20180324)  # same mixes on both backends
            for round_index in range(3):
                requests = random_mix(rng)
                with AnalyticsService(
                    GraphCatalog(), workers=2, backend=backend
                ) as service:
                    for name, g in graphs.items():
                        service.register(name, g)
                    batched = [
                        t.result(120) for t in service.submit_batch(requests)
                    ]
                for request, result in zip(requests, batched):
                    assert result.ok, (backend, round_index, result.error)
                    reference = scalar(request)
                    assert reference.ok
                    assert set(result.values) == set(reference.values)
                    for source in result.values:
                        np.testing.assert_array_equal(
                            result.values[source],
                            reference.values[source],
                            err_msg=(
                                f"{backend} round {round_index}: "
                                f"{request.algorithm} on {request.graph} "
                                f"source {source} diverged from scalar path"
                            ),
                        )

    def test_multi_source_request_values_keyed_by_source(self, graph):
        request = QueryRequest("sssp", "g", sources=(4, 8))
        with AnalyticsService(GraphCatalog(), workers=1) as service:
            service.register("g", graph)
            result = service.run(request)
        assert set(result.values) == {4, 8}
        direct_target = virtual_transform(graph, 10, coalesced=True)
        np.testing.assert_array_equal(
            result.value(4), sssp(direct_target, 4).values
        )
        np.testing.assert_array_equal(
            result.value(8), sssp(direct_target, 8).values
        )
